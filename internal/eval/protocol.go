package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/telemetry"
	"repro/internal/window"
)

// Protocol fixes the experimental parameters of §V.
type Protocol struct {
	// PrecomputeHours is the training prefix (paper: 300).
	PrecomputeHours int
	// SegmentHours is the evaluation segment length (paper: 6).
	SegmentHours int
	// Trials is the number of faulty segments evaluated per dataset
	// (paper: 100, mirrored by an equal number of fault-free segments).
	Trials int
	// MinOnset/MaxOnset bound the fault onset within a segment, in
	// windows; fault devices, classes, and onsets are drawn randomly
	// (§4.2).
	MinOnset int
	MaxOnset int
	// FaultClasses are the classes drawn from (defaults to the four
	// non-fail-stop classes plus fail-stop).
	FaultClasses []faults.Type
	// FaultsPerSegment is the number of simultaneous faults (paper: 1 in
	// the main experiment, 1-3 in the multi-fault discussion).
	FaultsPerSegment int
	// Detector configuration.
	Config core.Config
	// WindowsPerAggregate merges k consecutive one-minute simulator
	// windows into one detector window (k=1 reproduces the paper's 1-min
	// duration; the duration ablation uses k>1).
	WindowsPerAggregate int
	// Seed drives fault placement.
	Seed int64
	// Telemetry, when non-nil, instruments every segment's detector
	// against one shared registry. Instruments are get-or-create, so the
	// parallel worker pool aggregates into the same series without
	// coordination; counters are commutative, so the aggregate is
	// deterministic for a fixed protocol (timing histograms excepted).
	Telemetry *telemetry.Registry
}

// DefaultProtocol returns the paper's settings.
func DefaultProtocol() Protocol {
	return Protocol{
		PrecomputeHours:     300,
		SegmentHours:        6,
		Trials:              100,
		MinOnset:            60,
		MaxOnset:            180,
		FaultClasses:        faults.SensorTypes(),
		FaultsPerSegment:    1,
		WindowsPerAggregate: 1,
		Seed:                1,
	}
}

func (p Protocol) normalize() Protocol {
	d := DefaultProtocol()
	if p.PrecomputeHours <= 0 {
		p.PrecomputeHours = d.PrecomputeHours
	}
	if p.SegmentHours <= 0 {
		p.SegmentHours = d.SegmentHours
	}
	if p.Trials <= 0 {
		p.Trials = d.Trials
	}
	if p.MaxOnset <= p.MinOnset {
		p.MinOnset, p.MaxOnset = d.MinOnset, d.MaxOnset
	}
	if len(p.FaultClasses) == 0 {
		p.FaultClasses = d.FaultClasses
	}
	if p.FaultsPerSegment <= 0 {
		p.FaultsPerSegment = 1
	}
	if p.WindowsPerAggregate <= 0 {
		p.WindowsPerAggregate = 1
	}
	return p
}

// segmentWindows returns windows per segment after aggregation.
func (p Protocol) segmentWindows() int {
	return p.SegmentHours * 60 / p.WindowsPerAggregate
}

// Trained bundles a home with its trained context, so several experiments
// can share one precomputation.
type Trained struct {
	Home     *simhome.Home
	Context  *core.Context
	Protocol Protocol
	// TrainWindows is the number of aggregated windows trained on.
	TrainWindows int
	// TrainTime is the wall-clock cost of the precomputation phase.
	TrainTime time.Duration
	// firstSegment is the first aggregated window index of real-time data.
	firstSegment int
	// numSegments is how many whole segments the real-time suffix holds.
	numSegments int
	// bin is a lazily built binarizer for fault-pool selection; binOnce
	// guards the build so concurrent PlanFaults calls from the evaluation
	// worker pool stay race-free.
	bin     *core.Binarizer
	binOnce sync.Once
	binErr  error
}

// ensureBinarizer builds the shared fault-pool binarizer exactly once.
// After it returns nil the Trained is read-only and safe to share across
// the evaluation worker pool.
func (t *Trained) ensureBinarizer() error {
	t.binOnce.Do(func() {
		t.bin, t.binErr = core.NewBinarizer(t.Home.Layout(), t.Context.ValueThre())
	})
	return t.binErr
}

// aggregate merges k one-minute observations into one k-minute observation
// (bitwise OR of binary firings, concatenated numeric samples, unioned
// actuations), mirroring how a longer duration would have been recorded.
func aggregate(layout *window.Layout, obs []*window.Observation, index int) *window.Observation {
	if len(obs) == 1 {
		o := obs[0]
		o.Index = index
		return o
	}
	out := layout.NewObservation(index)
	seen := make(map[device.ID]bool)
	for _, o := range obs {
		for i, b := range o.Binary {
			if b {
				out.Binary[i] = true
			}
		}
		for j, s := range o.Numeric {
			out.Numeric[j] = append(out.Numeric[j], s...)
		}
		for _, a := range o.Actuated {
			if !seen[a] {
				seen[a] = true
				out.Actuated = append(out.Actuated, a)
			}
		}
	}
	return out
}

// aggWindow produces the detector window with aggregated index i.
func (t *Trained) aggWindow(i int) *window.Observation {
	return t.aggWindowFrom(t.Home, i)
}

// aggWindowFrom is aggWindow reading from an alternative home view (used
// to inject actuator faults with physical consequences).
func (t *Trained) aggWindowFrom(h *simhome.Home, i int) *window.Observation {
	k := t.Protocol.WindowsPerAggregate
	if k == 1 {
		return h.Window(i)
	}
	raw := make([]*window.Observation, 0, k)
	for j := 0; j < k; j++ {
		raw = append(raw, h.Window(i*k+j))
	}
	return aggregate(h.Layout(), raw, i)
}

// Train runs the precomputation phase for a dataset spec under the
// protocol.
func Train(spec simhome.Spec, seed int64, proto Protocol) (*Trained, error) {
	proto = proto.normalize()
	h, err := simhome.New(spec, seed)
	if err != nil {
		return nil, err
	}
	k := proto.WindowsPerAggregate
	totalAgg := h.Windows() / k
	trainAgg := proto.PrecomputeHours * 60 / k
	if trainAgg >= totalAgg {
		return nil, fmt.Errorf("eval: %s has %d windows, cannot train on %d",
			spec.Name, totalAgg, trainAgg)
	}
	t := &Trained{Home: h, Protocol: proto}
	start := time.Now()
	tr := core.NewTrainer(h.Layout(), time.Duration(k)*time.Minute)
	for i := 0; i < trainAgg; i++ {
		if err := tr.Calibrate(t.aggWindow(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainAgg; i++ {
		if err := tr.Learn(t.aggWindow(i)); err != nil {
			return nil, err
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		return nil, err
	}
	t.Context = ctx
	t.TrainTime = time.Since(start)
	t.TrainWindows = trainAgg
	t.firstSegment = trainAgg
	t.numSegments = (totalAgg - trainAgg) / proto.segmentWindows()
	if t.numSegments == 0 {
		return nil, fmt.Errorf("eval: %s leaves no full segments after training", spec.Name)
	}
	return t, nil
}

// NumSegments returns the number of distinct fault-free segments available.
func (t *Trained) NumSegments() int { return t.numSegments }

// SegmentOutcome is the result of running one segment through DICE.
type SegmentOutcome struct {
	// Faults lists the injected faults (nil for a fault-free segment).
	Faults []faults.Fault
	// Detected is true when any violation was raised.
	Detected bool
	// DetectedWindow is the segment-relative window of first detection
	// (-1 when undetected).
	DetectedWindow int
	// Cause is the check that first detected.
	Cause core.CheckKind
	// Identified lists the devices of the first alert (nil when
	// identification never concluded).
	Identified []device.ID
	// IdentifiedWindow is the segment-relative window of the first alert
	// (-1 when none).
	IdentifiedWindow int
	// Timing aggregates mean per-window stage costs.
	MeanBinarize    time.Duration
	MeanCorrelation time.Duration
	MeanTransition  time.Duration
	MeanIdentify    time.Duration
}

// RunSegment evaluates segment seg (0-based), optionally corrupted by an
// injector. The detector is fresh (reset) at segment start, mirroring the
// paper's independent six-hour segments. For a faulty segment, detections
// and alerts raised before the earliest fault onset are residual false
// positives, not fault detections, and are excluded from the outcome.
func (t *Trained) RunSegment(seg int, inj *faults.Injector) (SegmentOutcome, error) {
	out := SegmentOutcome{DetectedWindow: -1, IdentifiedWindow: -1}
	if seg < 0 || seg >= t.numSegments {
		return out, fmt.Errorf("eval: segment %d out of range [0, %d)", seg, t.numSegments)
	}
	ignoreBefore := 0
	if inj != nil {
		first := -1
		for _, f := range inj.Faults() {
			if first < 0 || f.Onset < first {
				first = f.Onset
			}
		}
		if first > 0 {
			ignoreBefore = first
		}
	}
	det, err := core.New(t.Context,
		core.WithConfig(t.Protocol.Config),
		core.WithTelemetry(t.Protocol.Telemetry))
	if err != nil {
		return out, err
	}
	if inj != nil {
		out.Faults = inj.Faults()
	}
	segLen := t.Protocol.segmentWindows()
	base := t.firstSegment + seg*segLen

	// Actuator faults change what the actuators physically do, so they are
	// injected at the simulation level; sensor faults corrupt observations
	// and stay with the observation-level injector.
	src := t.Home
	applyObs := inj != nil
	if inj != nil {
		af := simhome.ActuatorFaults{
			Dead:     make(map[device.ID]bool),
			Spurious: make(map[device.ID]bool),
			Seed:     t.Protocol.Seed*131 + int64(seg),
		}
		hasActFaults := false
		for _, f := range inj.Faults() {
			if !f.Type.IsActuatorFault() {
				continue
			}
			hasActFaults = true
			af.FromMinute = (base + f.Onset) * t.Protocol.WindowsPerAggregate
			if f.Type == faults.ActuatorDead {
				af.Dead[f.Device] = true
			} else {
				af.Spurious[f.Device] = true
			}
		}
		if hasActFaults {
			src = t.Home.WithActuatorFaults(af)
			applyObs = false // plans never mix sensor and actuator faults
		}
	}

	var bSum, cSum, tSum, iSum time.Duration
	for w := 0; w < segLen; w++ {
		o := t.aggWindowFrom(src, base+w)
		if applyObs {
			o = inj.Apply(o, w)
		}
		res, err := det.Process(o)
		if err != nil {
			return out, err
		}
		bSum += res.Timing.Binarize
		cSum += res.Timing.Correlation
		tSum += res.Timing.Transition
		iSum += res.Timing.Identify
		if res.Detected && !out.Detected && w >= ignoreBefore {
			out.Detected = true
			out.DetectedWindow = w
			out.Cause = res.Violation
		}
		if res.Alert != nil && out.Identified == nil && w >= ignoreBefore {
			out.Identified = res.Alert.Devices
			out.IdentifiedWindow = w
		}
	}
	n := time.Duration(segLen)
	out.MeanBinarize = bSum / n
	out.MeanCorrelation = cSum / n
	out.MeanTransition = tSum / n
	out.MeanIdentify = iSum / n
	return out, nil
}

// PlanFaults draws the fault assignment for trial i under the protocol:
// the onset is drawn first, then the target devices are drawn from the
// pool of devices exercised shortly after the onset. Faulting a device
// that never reports during the segment would produce a byte-identical
// segment (undefined ground truth), and the paper's minutes-scale
// detection times imply its faulted sensors were in active use when the
// fault struck.
func (t *Trained) PlanFaults(trial int) ([]faults.Fault, error) {
	p := t.Protocol
	rng := rand.New(rand.NewSource(int64(uint64(p.Seed)*0x9E3779B9 + uint64(trial))))
	// Onset bounds are specified in minutes; convert to aggregated windows
	// and clamp into the segment.
	k := p.WindowsPerAggregate
	minOnset := p.MinOnset / k
	maxOnset := p.MaxOnset / k
	segW := t.Protocol.segmentWindows()
	if maxOnset > segW/2 {
		maxOnset = segW / 2
	}
	if minOnset >= maxOnset {
		minOnset = maxOnset / 2
	}
	if maxOnset <= minOnset {
		maxOnset = minOnset + 1
	}
	onset := minOnset + rng.Intn(maxOnset-minOnset)
	actuatorFaults := p.FaultClasses[0].IsActuatorFault()
	// The pool: devices active within 45 minutes after onset, widening to
	// the rest of the segment (and then to every device) when a quiet
	// stretch leaves the near-onset pool too small.
	pool, err := t.exercisedDevices(trial%t.numSegments, onset, onset+45, actuatorFaults)
	if err != nil {
		return nil, err
	}
	if len(pool) < p.FaultsPerSegment {
		pool, err = t.exercisedDevices(trial%t.numSegments, onset, t.Protocol.segmentWindows(), actuatorFaults)
		if err != nil {
			return nil, err
		}
	}
	if len(pool) < p.FaultsPerSegment {
		return faults.Plan(t.Home.Layout(), rng, p.FaultsPerSegment, p.FaultClasses, onset, onset+1)
	}
	fs, err := faults.PlanPool(rng, pool, p.FaultsPerSegment, p.FaultClasses, onset, onset+1)
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// exercisedDevices lists the devices that produce an observable signal in
// segment seg within windows [from, to): binary sensors that fire, numeric
// sensors with at least one active state-set bit, and actuators that
// activate.
func (t *Trained) exercisedDevices(seg, from, to int, actuators bool) ([]device.ID, error) {
	if err := t.ensureBinarizer(); err != nil {
		return nil, err
	}
	segLen := t.Protocol.segmentWindows()
	base := t.firstSegment + seg*segLen
	if to > segLen {
		to = segLen
	}
	active := make(map[device.ID]bool)
	for w := from; w < to; w++ {
		o := t.aggWindow(base + w)
		if actuators {
			for _, id := range o.Actuated {
				active[id] = true
			}
			continue
		}
		v, err := t.bin.StateSet(o)
		if err != nil {
			return nil, err
		}
		for _, bit := range v.Ones() {
			id, err := t.bin.DeviceForBit(bit)
			if err != nil {
				return nil, err
			}
			active[id] = true
		}
	}
	out := make([]device.ID, 0, len(active))
	for id := range active {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// InjectorFor builds the injector for trial i.
func (t *Trained) InjectorFor(trial int, fs []faults.Fault) (*faults.Injector, error) {
	return faults.NewInjector(t.Home.Layout(), int64(uint64(t.Protocol.Seed)*31+uint64(trial)), fs...)
}
