package eval

import (
	"testing"

	"repro/internal/wal"
)

func TestRunRecoveryBench(t *testing.T) {
	res, err := RunRecoveryBench(RecoveryBench{Hours: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Fatal("recovered state diverged from the uncrashed run")
	}
	if res.Events == 0 {
		t.Fatal("bench replayed nothing")
	}
	want := []string{"none", wal.SyncAlways.String(), wal.SyncBatch.String(), wal.SyncNever.String()}
	if len(res.Policies) != len(want) {
		t.Fatalf("policy rows = %d, want %d", len(res.Policies), len(want))
	}
	for i, p := range res.Policies {
		if p.Policy != want[i] {
			t.Errorf("policy[%d] = %q, want %q", i, p.Policy, want[i])
		}
		if p.EventsPerSec <= 0 {
			t.Errorf("policy %s events/sec = %v", p.Policy, p.EventsPerSec)
		}
	}
	if res.ReplayedRecords == 0 {
		t.Error("crash recovery replayed zero WAL records; the tail was empty")
	}
	if res.RecoveryMS <= 0 {
		t.Errorf("recovery time = %v ms", res.RecoveryMS)
	}
}
