package eval

import (
	"testing"

	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/window"
)

// fastSpec is a small dataset that trains quickly: 6 days of recording,
// trained on the first 72 hours.
func fastSpec() simhome.Spec {
	s := simhome.SpecDHouseA()
	s.Name = "fast"
	s.Hours = 6 * 24
	return s
}

// fastProto shrinks the paper protocol for unit tests.
func fastProto() Protocol {
	p := DefaultProtocol()
	p.PrecomputeHours = 72
	p.Trials = 12
	return p
}

func trainFast(t testing.TB) *Trained {
	t.Helper()
	tr, err := Train(fastSpec(), 5, fastProto())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMetrics(t *testing.T) {
	var m Metrics
	if m.Precision() != 1 || m.Recall() != 1 {
		t.Error("empty metrics should be perfect")
	}
	m.AddTP(8)
	m.AddFP(2)
	m.AddFN(2)
	if got := m.Precision(); got != 0.8 {
		t.Errorf("precision = %v", got)
	}
	if got := m.Recall(); got != 0.8 {
		t.Errorf("recall = %v", got)
	}
	if got := m.F1(); got < 0.8-1e-9 || got > 0.8+1e-9 {
		t.Errorf("F1 = %v", got)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestMeanAccumulator(t *testing.T) {
	var a MeanAccumulator
	if a.Mean() != 0 || a.N() != 0 {
		t.Error("zero accumulator broken")
	}
	a.Add(2)
	a.Add(4)
	if a.Mean() != 3 || a.N() != 2 {
		t.Errorf("mean=%v n=%d", a.Mean(), a.N())
	}
}

func TestProtocolNormalize(t *testing.T) {
	p := Protocol{}.normalize()
	d := DefaultProtocol()
	if p.PrecomputeHours != d.PrecomputeHours || p.Trials != d.Trials {
		t.Errorf("normalize: %+v", p)
	}
	if p.segmentWindows() != 360 {
		t.Errorf("segmentWindows = %d", p.segmentWindows())
	}
	p.WindowsPerAggregate = 2
	if p.segmentWindows() != 180 {
		t.Errorf("aggregated segmentWindows = %d", p.segmentWindows())
	}
}

func TestTrainValidation(t *testing.T) {
	s := fastSpec()
	p := fastProto()
	p.PrecomputeHours = s.Hours + 1
	if _, err := Train(s, 1, p); err == nil {
		t.Error("training longer than the recording accepted")
	}
}

func TestTrainProducesSegments(t *testing.T) {
	tr := trainFast(t)
	if tr.NumSegments() <= 0 {
		t.Fatal("no segments")
	}
	// 6 days - 3 days training = 72h -> 12 six-hour segments.
	if tr.NumSegments() != 12 {
		t.Errorf("NumSegments = %d, want 12", tr.NumSegments())
	}
	if tr.Context.NumGroups() == 0 {
		t.Error("no groups trained")
	}
}

func TestRunSegmentFaultFree(t *testing.T) {
	tr := trainFast(t)
	fpCount := 0
	for seg := 0; seg < tr.NumSegments(); seg++ {
		out, err := tr.RunSegment(seg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out.Faults != nil {
			t.Error("fault-free segment reported faults")
		}
		if out.Detected {
			fpCount++
		}
	}
	if fpCount > tr.NumSegments()/2 {
		t.Errorf("false positives in %d/%d fault-free segments", fpCount, tr.NumSegments())
	}
}

func TestRunSegmentOutOfRange(t *testing.T) {
	tr := trainFast(t)
	if _, err := tr.RunSegment(-1, nil); err == nil {
		t.Error("negative segment accepted")
	}
	if _, err := tr.RunSegment(tr.NumSegments(), nil); err == nil {
		t.Error("overflow segment accepted")
	}
}

func TestRunSegmentDetectsFailStop(t *testing.T) {
	tr := trainFast(t)
	// Fail-stop the kitchen light sensor at window 0. The fault manifests
	// whenever the kitchen is occupied (or its bulb lit), which happens in
	// most but not all six-hour segments — a fault can only be caught when
	// the sensor would have reacted, exactly as in the paper.
	target, ok := tr.Home.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no kitchen light sensor")
	}
	detected := 0
	identifiedCorrectly := 0
	for seg := 0; seg < tr.NumSegments(); seg++ {
		inj, err := faults.NewInjector(tr.Home.Layout(), 9,
			faults.Fault{Device: target, Type: faults.FailStop, Onset: 0})
		if err != nil {
			t.Fatal(err)
		}
		out, err := tr.RunSegment(seg, inj)
		if err != nil {
			t.Fatal(err)
		}
		if out.Detected {
			detected++
		}
		for _, id := range out.Identified {
			if id == target {
				identifiedCorrectly++
			}
		}
	}
	if detected < tr.NumSegments()/2 {
		t.Errorf("fail-stop detected in only %d/%d segments", detected, tr.NumSegments())
	}
	if identifiedCorrectly < tr.NumSegments()/3 {
		t.Errorf("fail-stop identified in only %d/%d segments", identifiedCorrectly, tr.NumSegments())
	}
}

func TestPlanFaultsDeterministic(t *testing.T) {
	tr := trainFast(t)
	a, err := tr.PlanFaults(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.PlanFaults(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0] != b[0] {
		t.Error("PlanFaults not deterministic per trial")
	}
	c, err := tr.PlanFaults(4)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == c[0] {
		t.Log("trials 3 and 4 drew the same fault (possible but unlikely)")
	}
}

func TestEvaluateDatasetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation integration test")
	}
	r, err := EvaluateDataset(fastSpec(), 5, fastProto())
	if err != nil {
		t.Fatal(err)
	}
	if r.FaultySegments != 12 {
		t.Errorf("FaultySegments = %d, want 12", r.FaultySegments)
	}
	if r.Detection.Recall() < 0.5 {
		t.Errorf("detection recall %.2f unreasonably low", r.Detection.Recall())
	}
	if r.Detection.Precision() < 0.5 {
		t.Errorf("detection precision %.2f unreasonably low", r.Detection.Precision())
	}
	if r.Identification.Recall() > r.Detection.Recall()+1e-9 {
		t.Error("identification recall cannot exceed detection recall")
	}
	if r.NumGroups <= 0 || r.Degree <= 0 {
		t.Error("context stats missing")
	}
	if r.CorrelationCheckTime <= 0 {
		t.Error("stage timing missing")
	}
}

func TestAggregateMergesWindows(t *testing.T) {
	tr := trainFast(t)
	layout := tr.Home.Layout()
	a := layout.NewObservation(0)
	b := layout.NewObservation(1)
	a.Binary[0] = true
	b.Binary[1] = true
	a.Numeric[0] = []float64{1}
	b.Numeric[0] = []float64{2}
	a.Actuated = []device.ID{layout.ActuatorID(0)}
	b.Actuated = []device.ID{layout.ActuatorID(0), layout.ActuatorID(1)}
	m := aggregate(layout, []*window.Observation{a, b}, 7)
	if m.Index != 7 {
		t.Errorf("Index = %d", m.Index)
	}
	if !m.Binary[0] || !m.Binary[1] {
		t.Errorf("Binary not ORed: %v", m.Binary)
	}
	if len(m.Numeric[0]) != 2 || m.Numeric[0][0] != 1 || m.Numeric[0][1] != 2 {
		t.Errorf("Numeric not concatenated: %v", m.Numeric[0])
	}
	if len(m.Actuated) != 2 {
		t.Errorf("Actuated not unioned: %v", m.Actuated)
	}
	// Single-window aggregation passes through but restamps the index.
	single := aggregate(layout, []*window.Observation{a}, 3)
	if single.Index != 3 || !single.Binary[0] {
		t.Error("single-window aggregate broken")
	}
}

func TestMultiFaultProtocol(t *testing.T) {
	p := MultiFaultProtocol(DefaultProtocol(), 3)
	if p.FaultsPerSegment != 3 || p.Config.MaxFaults != 3 {
		t.Errorf("MultiFaultProtocol: %+v", p)
	}
}

func TestActuatorProtocol(t *testing.T) {
	p := ActuatorProtocol(DefaultProtocol())
	for _, c := range p.FaultClasses {
		if !c.IsActuatorFault() {
			t.Errorf("non-actuator class %v", c)
		}
	}
}
