package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
)

// DriftBench configures the online-adaptation benchmark: a context is
// trained on a home's original routine, the residents then adopt new
// activities (seeded behaviour drift — every post-onset window is
// legitimate), and the same drifted stream is replayed through a static
// detector and an adapter-backed one. The static arm turns the new
// routines into false alarms forever; the adaptive arm must absorb them —
// and still catch real faults injected after it has adapted.
type DriftBench struct {
	// TrainHours is the precomputation prefix (default 72).
	TrainHours int
	// DriftDays is how many days of drifted behaviour each arm replays
	// (default 8).
	DriftDays int
	// ExtraActivities is how many new ADLs the residents adopt (default 5).
	ExtraActivities int
	// Trials is the number of injected-fault trials per arm after the
	// adaptation phase (default 12).
	Trials int
	// AdmitAfter overrides the adapter's sustained-observation threshold
	// (default 5: the bench compresses weeks of routine change into a few
	// simulated days, so the production threshold is scaled down with it).
	AdmitAfter int
	// Seed drives the simulation and fault placement (default 29).
	Seed int64
}

func (o DriftBench) normalize() DriftBench {
	if o.TrainHours <= 0 {
		o.TrainHours = 72
	}
	if o.DriftDays <= 0 {
		o.DriftDays = 8
	}
	if o.ExtraActivities <= 0 {
		o.ExtraActivities = 5
	}
	if o.Trials <= 0 {
		o.Trials = 12
	}
	if o.AdmitAfter <= 0 {
		o.AdmitAfter = 5
	}
	if o.Seed == 0 {
		o.Seed = 29
	}
	return o
}

// DriftArmResult is one arm's outcome over the drifted stream.
type DriftArmResult struct {
	// FalseAlarms is the number of concluded alerts on the fault-free
	// drifted stream — every one of them blames healthy devices.
	FalseAlarms int `json:"false_alarms"`
	// ViolationWindows is the number of windows that raised any violation.
	ViolationWindows int `json:"violation_windows"`
	// MissedFaults is how many injected-fault trials the arm failed to
	// detect after the fault's onset.
	MissedFaults int `json:"missed_faults"`
	// ReplayMS is the wall-clock cost of the arm's drift replay.
	ReplayMS float64 `json:"replay_ms"`
}

// DriftBenchResult is the outcome of one drift benchmark run.
type DriftBenchResult struct {
	TrainHours      int   `json:"train_hours"`
	DriftDays       int   `json:"drift_days"`
	ExtraActivities int   `json:"extra_activities"`
	DriftWindows    int   `json:"drift_windows"`
	Trials          int   `json:"trials"`
	AdmitAfter      int   `json:"admit_after"`
	Seed            int64 `json:"seed"`

	Static   DriftArmResult `json:"static"`
	Adaptive DriftArmResult `json:"adaptive"`

	// FalseAlarmReductionPct is how much of the static arm's false-alarm
	// load adaptation removed (100 = all of it).
	FalseAlarmReductionPct float64 `json:"false_alarm_reduction_pct"`

	// Adaptation trajectory over the drift replay.
	FinalEpoch     uint64 `json:"final_epoch"`
	GroupsAdmitted int64  `json:"groups_admitted"`
	EdgesAdmitted  int64  `json:"edges_admitted"`
	DecayedEdges   int64  `json:"decayed_edges"`
	BaseGroups     int    `json:"base_groups"`
	AdaptedGroups  int    `json:"adapted_groups"`
}

// RunDriftBench trains a context on the original routine, replays the
// drifted stream through both arms, then injects sensor faults into the
// post-adaptation stream and scores detection per arm. It errors when the
// adaptive arm misses a fault or fails to beat the static arm's
// false-alarm count — the two properties the adapter exists to provide.
func RunDriftBench(o DriftBench) (*DriftBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDHouseA()
	spec.Name = "drift-bench"
	const trialSegW = 3 * 60 // 3h fault segments
	trialW := 24 * 60        // one day of post-adaptation stream for trials
	spec.Hours = o.TrainHours + o.DriftDays*24 + trialW/60
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	trainW := o.TrainHours * 60
	drifted, err := home.WithDrift(simhome.Drift{ExtraActivities: o.ExtraActivities, FromMinute: trainW})
	if err != nil {
		return nil, err
	}

	// Precompute on the shared prefix (bit-identical across base/drifted).
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	cctx, err := tr.Context()
	if err != nil {
		return nil, err
	}

	driftW := o.DriftDays * 24 * 60
	res := &DriftBenchResult{
		TrainHours:      o.TrainHours,
		DriftDays:       o.DriftDays,
		ExtraActivities: o.ExtraActivities,
		DriftWindows:    driftW,
		Trials:          o.Trials,
		AdmitAfter:      o.AdmitAfter,
		Seed:            o.Seed,
		BaseGroups:      cctx.NumGroups(),
	}

	// Static arm: the frozen context grinds through the drifted stream.
	staticDet, err := core.New(cctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := trainW; i < trainW+driftW; i++ {
		r, err := staticDet.Process(drifted.Window(i))
		if err != nil {
			return nil, err
		}
		if r.Violation != core.CheckNone {
			res.Static.ViolationWindows++
		}
		if r.Alert != nil {
			res.Static.FalseAlarms++
		}
	}
	res.Static.ReplayMS = float64(time.Since(start).Microseconds()) / 1000

	// Adaptive arm: same stream, same base context, adapter in the loop.
	adaptDet, err := core.New(cctx)
	if err != nil {
		return nil, err
	}
	adapter, err := core.NewAdapter(cctx, core.WithAdmitAfter(o.AdmitAfter))
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := trainW; i < trainW+driftW; i++ {
		w := drifted.Window(i)
		r, err := adaptDet.Process(w)
		if err != nil {
			return nil, err
		}
		if r.Violation != core.CheckNone {
			res.Adaptive.ViolationWindows++
		}
		if r.Alert != nil {
			res.Adaptive.FalseAlarms++
		}
		pub, err := adapter.Observe(w, r)
		if err != nil {
			return nil, err
		}
		if pub != nil {
			if err := adaptDet.SwapContext(pub); err != nil {
				return nil, err
			}
		}
	}
	res.Adaptive.ReplayMS = float64(time.Since(start).Microseconds()) / 1000
	adapted := adapter.Context()
	res.FinalEpoch = adapted.Epoch()
	res.GroupsAdmitted = adapter.GroupsAdmitted()
	res.EdgesAdmitted = adapter.EdgesAdmitted()
	res.DecayedEdges = adapter.DecayedEdges()
	res.AdaptedGroups = adapted.NumGroups()
	if res.Static.FalseAlarms > 0 {
		res.FalseAlarmReductionPct = 100 * (1 - float64(res.Adaptive.FalseAlarms)/float64(res.Static.FalseAlarms))
	}

	// Fault trials on the post-adaptation day: each trial injects one
	// sensor fault into a 3h segment of the still-drifted stream and runs a
	// fresh detector per arm. The adaptive arm scans the adapted context —
	// admitting the new routines must not have taught it to excuse faults.
	bin, err := core.NewBinarizer(home.Layout(), cctx.ValueThre())
	if err != nil {
		return nil, err
	}
	classes := faults.SensorTypes()
	faultBase := trainW + driftW
	numSegs := trialW / trialSegW
	for trial := 0; trial < o.Trials; trial++ {
		segBase := faultBase + (trial%numSegs)*trialSegW
		onset := 45 + (trial*13)%45
		pool, err := exercisedSensors(drifted, bin, segBase+onset, segBase+onset+45)
		if err != nil {
			return nil, err
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("eval: drift trial %d has no exercised sensors", trial)
		}
		f := faults.Fault{
			Device: pool[trial%len(pool)],
			Type:   classes[trial%len(classes)],
			Onset:  onset,
		}
		for arm, ctx := range map[*DriftArmResult]*core.Context{&res.Static: cctx, &res.Adaptive: adapted} {
			inj, err := faults.NewInjector(home.Layout(), o.Seed*31+int64(trial), f)
			if err != nil {
				return nil, err
			}
			det, err := core.New(ctx)
			if err != nil {
				return nil, err
			}
			detected := false
			for w := 0; w < trialSegW; w++ {
				r, err := det.Process(inj.Apply(drifted.Window(segBase+w), w))
				if err != nil {
					return nil, err
				}
				if r.Detected && w >= onset {
					detected = true
				}
			}
			if !detected {
				arm.MissedFaults++
			}
		}
	}

	switch {
	case res.Adaptive.MissedFaults > 0:
		return res, fmt.Errorf("eval: adaptive arm missed %d of %d injected faults", res.Adaptive.MissedFaults, o.Trials)
	case res.Adaptive.FalseAlarms >= res.Static.FalseAlarms:
		return res, fmt.Errorf("eval: adaptation did not reduce false alarms (static %d, adaptive %d)",
			res.Static.FalseAlarms, res.Adaptive.FalseAlarms)
	}
	return res, nil
}

// exercisedSensors lists the sensors with at least one active state-set bit
// in windows [from, to) — faulting a silent device would leave the segment
// byte-identical and the ground truth undefined.
func exercisedSensors(h *simhome.Home, bin *core.Binarizer, from, to int) ([]device.ID, error) {
	active := make(map[device.ID]bool)
	var order []device.ID
	for w := from; w < to; w++ {
		v, err := bin.StateSet(h.Window(w))
		if err != nil {
			return nil, err
		}
		for _, bit := range v.Ones() {
			id, err := bin.DeviceForBit(bit)
			if err != nil {
				return nil, err
			}
			if !active[id] {
				active[id] = true
				order = append(order, id)
			}
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order, nil
}
