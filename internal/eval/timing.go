package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
)

// TimingBench configures the timing-check benchmark: a context is trained
// on a home's routine (recording interval sketches), and the same injected
// timing faults — delayed actuators and slowly degrading sensors, which are
// structurally invisible because every transition they produce is a trained
// one — are replayed through a structural-only arm (WithTiming(false)) and
// a timing-aware arm. The timing arm must catch what the structural arm
// misses while flagging nothing on a clean replay.
type TimingBench struct {
	// TrainHours is the precomputation prefix (default 960 — the interval
	// sketches need >= core.DefaultTimingMinSamples repeats of each edge
	// before their bands arm, and the thinnest daily-routine edges collect
	// well under one sample per day).
	TrainHours int
	// CleanHours is the fault-free replay both arms must stay silent on
	// (default 24).
	CleanHours int
	// Trials is the number of injected-fault trials per arm, alternating
	// delayed-actuator and slow-degradation faults (default 12).
	Trials int
	// DelayWindows is how many hold windows each fault inserts before its
	// triggers (default 135 — at the paper's one-minute windows over two
	// hours' hesitation, landing the stretched dwell in log2 bucket 7,
	// clear of the bucket<=5 dwell bands the D_houseA routine trains plus
	// the detector's slack bucket).
	DelayWindows int
	// Seed drives the simulation (default 31).
	Seed int64
}

func (o TimingBench) normalize() TimingBench {
	if o.TrainHours <= 0 {
		o.TrainHours = 960
	}
	if o.CleanHours <= 0 {
		o.CleanHours = 24
	}
	if o.Trials <= 0 {
		o.Trials = 12
	}
	if o.DelayWindows <= 0 {
		o.DelayWindows = 135
	}
	if o.Seed == 0 {
		o.Seed = 31
	}
	return o
}

// TimingArmResult is one arm's outcome.
type TimingArmResult struct {
	// CleanFalseAlarms / CleanViolationWindows score the fault-free replay:
	// concluded alerts and windows raising any violation.
	CleanFalseAlarms      int `json:"clean_false_alarms"`
	CleanViolationWindows int `json:"clean_violation_windows"`
	// Caught / Missed score the injected-fault trials (detection at or
	// after the fault's onset).
	Caught int `json:"caught"`
	Missed int `json:"missed"`
}

// TimingBenchResult is the outcome of one timing benchmark run.
type TimingBenchResult struct {
	TrainHours   int   `json:"train_hours"`
	CleanHours   int   `json:"clean_hours"`
	Trials       int   `json:"trials"`
	DelayWindows int   `json:"delay_windows"`
	Seed         int64 `json:"seed"`
	Groups       int   `json:"groups"`

	Structural TimingArmResult `json:"structural"`
	Timing     TimingArmResult `json:"timing"`

	// CleanTimingFlags is the number of clean-replay windows the timing arm
	// flagged with cause=timing. The bench requires zero: the check must add
	// detection without adding false alarms.
	CleanTimingFlags int `json:"clean_timing_flags"`
	// ExtraFalseAlarms is the timing arm's clean-replay alert count beyond
	// the structural arm's.
	ExtraFalseAlarms int `json:"extra_false_alarms"`

	// StructuralMissed is how many trials the structural arm missed
	// entirely; TimingCaughtOfMissed is how many of those the timing arm
	// caught, and CatchPct the resulting percentage — the headline number.
	StructuralMissed     int     `json:"structural_missed"`
	TimingCaughtOfMissed int     `json:"timing_caught_of_missed"`
	CatchPct             float64 `json:"catch_pct"`
	// TimingCauseDetections counts trial detections whose violation was
	// cause=timing (as opposed to a structural side effect of the stretch).
	TimingCauseDetections int `json:"timing_cause_detections"`
}

// RunTimingBench trains a timing-capable context, verifies the clean
// replay stays silent under the timing check, then scores both arms on
// stream-stretch fault trials. It errors when the timing check flags clean
// windows, when the structural arm misses nothing (a vacuous benchmark), or
// when the timing arm catches fewer than 80% of the structurally missed
// trials.
func RunTimingBench(o TimingBench) (*TimingBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDHouseA()
	spec.Name = "timing-bench"
	const trialSegW = 6 * 60 // 6h fault segments
	trialDayW := 24 * 60
	spec.Hours = o.TrainHours + o.CleanHours + trialDayW/60
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}

	trainW := o.TrainHours * 60
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		return nil, err
	}
	if !ctx.TimingCapable() {
		return nil, fmt.Errorf("eval: trained context is not timing capable")
	}

	res := &TimingBenchResult{
		TrainHours:   o.TrainHours,
		CleanHours:   o.CleanHours,
		Trials:       o.Trials,
		DelayWindows: o.DelayWindows,
		Seed:         o.Seed,
		Groups:       ctx.NumGroups(),
	}

	newArm := func(timing bool) (*core.Detector, error) {
		if timing {
			return core.New(ctx)
		}
		return core.New(ctx, core.WithTiming(false))
	}

	// Clean replay: both arms over the same fault-free day(s).
	cleanW := o.CleanHours * 60
	for _, arm := range []struct {
		res    *TimingArmResult
		timing bool
	}{{&res.Structural, false}, {&res.Timing, true}} {
		det, err := newArm(arm.timing)
		if err != nil {
			return nil, err
		}
		for i := trainW; i < trainW+cleanW; i++ {
			r, err := det.Process(home.Window(i))
			if err != nil {
				return nil, err
			}
			if r.Violation != core.CheckNone {
				arm.res.CleanViolationWindows++
				if r.Violation == core.CheckTiming {
					res.CleanTimingFlags++
				}
			}
			if r.Alert != nil {
				arm.res.CleanFalseAlarms++
			}
		}
	}
	res.ExtraFalseAlarms = res.Timing.CleanFalseAlarms - res.Structural.CleanFalseAlarms

	// Fault trials: stream-stretch faults on segments of the final day,
	// alternating delayed-actuator and slow-degradation targets. Sites are
	// precomputed as (segment, device) pairs whose device triggers after the
	// latest possible onset — overnight segments have nothing to delay.
	faultBase := trainW + cleanW
	numSegs := trialDayW / trialSegW
	const onsetMin, onsetSpread = 30, 30 // onsets in [30, 60)
	type trialSite struct {
		segBase int
		target  device.ID
	}
	// A delayed trigger only produces a flaggable window if it survives the
	// stretch's end-of-segment truncation, so a site's device must trigger
	// after the latest onset but early enough that trigger+Delay still fits.
	var actSites, binSites []trialSite
	for s := 0; s < numSegs; s++ {
		b := faultBase + s*trialSegW
		lo, hi := b+onsetMin+onsetSpread, b+trialSegW-o.DelayWindows
		if hi <= lo {
			continue
		}
		for _, id := range activeIDs(home.ActuatorFirings(lo, hi), 1) {
			actSites = append(actSites, trialSite{b, id})
		}
		for _, id := range activeIDs(home.BinaryFlips(lo, hi), 1) {
			binSites = append(binSites, trialSite{b, id})
		}
	}
	if len(actSites) == 0 || len(binSites) == 0 {
		return nil, fmt.Errorf("eval: no timing-fault sites in the trial day (%d actuator, %d sensor)",
			len(actSites), len(binSites))
	}

	for trial := 0; trial < o.Trials; trial++ {
		onset := onsetMin + (trial*13)%onsetSpread
		var site trialSite
		var f faults.TimingFault
		if trial%2 == 0 {
			site = actSites[(trial/2)%len(actSites)]
			f = faults.TimingFault{Device: site.target, Type: faults.ActuatorDelayed, Onset: onset, Delay: o.DelayWindows}
		} else {
			site = binSites[(trial/2)%len(binSites)]
			f = faults.TimingFault{Device: site.target, Type: faults.SlowDegradation, Onset: onset, Delay: o.DelayWindows}
		}
		seg := home.WindowRange(site.segBase, site.segBase+trialSegW)
		faulty, err := faults.StretchStream(home.Layout(), seg, f)
		if err != nil {
			return nil, err
		}

		structCaught := false
		timingCaught := false
		timingCause := false
		for _, arm := range []struct {
			res    *TimingArmResult
			timing bool
			caught *bool
		}{{&res.Structural, false, &structCaught}, {&res.Timing, true, &timingCaught}} {
			det, err := newArm(arm.timing)
			if err != nil {
				return nil, err
			}
			for w, obs := range faulty {
				r, err := det.Process(obs)
				if err != nil {
					return nil, err
				}
				if r.Detected && w >= onset {
					*arm.caught = true
					if r.Violation == core.CheckTiming {
						timingCause = true
					}
				}
			}
			if *arm.caught {
				arm.res.Caught++
			} else {
				arm.res.Missed++
			}
		}
		if !structCaught {
			res.StructuralMissed++
			if timingCaught {
				res.TimingCaughtOfMissed++
			}
		}
		if timingCause {
			res.TimingCauseDetections++
		}
	}
	if res.StructuralMissed > 0 {
		res.CatchPct = 100 * float64(res.TimingCaughtOfMissed) / float64(res.StructuralMissed)
	}

	switch {
	case res.CleanTimingFlags > 0:
		return res, fmt.Errorf("eval: timing check flagged %d clean windows", res.CleanTimingFlags)
	case res.ExtraFalseAlarms > 0:
		return res, fmt.Errorf("eval: timing arm raised %d extra clean false alarms", res.ExtraFalseAlarms)
	case res.StructuralMissed == 0:
		return res, fmt.Errorf("eval: structural arm missed nothing — the benchmark is vacuous")
	case res.CatchPct < 80:
		return res, fmt.Errorf("eval: timing arm caught %.0f%% of structurally missed faults, want >= 80%%", res.CatchPct)
	}
	return res, nil
}

// activeIDs returns the IDs with at least min occurrences, ascending.
func activeIDs(counts map[device.ID]int, min int) []device.ID {
	var out []device.ID
	for id, n := range counts {
		if n >= min {
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
