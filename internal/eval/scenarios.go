package eval

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/window"
)

// The adversarial scenario library: seeded, deterministic stress cases the
// multi-fault detector is graded on. Each scenario instantiates to a
// faults.Scenario (plus, for the occupancy cases, a simhome view) applied
// to one segment of a trial day. The library covers the attack and
// nuisance classes the robustness issue names: spoofed ghost devices,
// replayed event sequences, malicious actuator triggering, benign
// occupancy changes that must NOT alert, and mixed-fault storms of 2–4
// point+stream faults with staggered onsets.

// Scenario library names.
const (
	ScenarioGhostDevice       = "ghost-device"
	ScenarioReplayAttack      = "replay-attack"
	ScenarioMaliciousActuator = "malicious-actuator"
	ScenarioBenignGuest       = "benign-guest"
	ScenarioBenignVacation    = "benign-vacation"
	ScenarioStorm2            = "storm-2"
	ScenarioStorm3            = "storm-3"
	ScenarioStorm4            = "storm-4"
)

// ScenarioNames lists the library in report order.
func ScenarioNames() []string {
	return []string{
		ScenarioGhostDevice, ScenarioReplayAttack, ScenarioMaliciousActuator,
		ScenarioBenignGuest, ScenarioBenignVacation,
		ScenarioStorm2, ScenarioStorm3, ScenarioStorm4,
	}
}

// ScenarioInstance is one concrete, seeded trial of a library scenario:
// which segment of the recording it plays out on, what gets injected, and
// the ground truth the identifier is graded against.
type ScenarioInstance struct {
	Name        string
	Description string
	Benign      bool
	// DetectOnly marks scenarios graded on detection alone (replays: the
	// faulty party is the network, not a device).
	DetectOnly bool
	// SegBase/SegLen locate the trial segment in absolute recording
	// windows.
	SegBase, SegLen int
	// Onset is the first in-segment window index at which anything is
	// wrong; detection before it does not count.
	Onset int
	// Scenario carries the injections (zero-valued for benign instances).
	Scenario faults.Scenario
	// Occupancy is the benign occupancy change, nil for device scenarios.
	Occupancy *simhome.OccupancyChange
	// GroundTruth is the device set an identifier should name, ascending.
	GroundTruth []device.ID
	// MaxFaults is the concurrent-episode cap the detector needs for this
	// scenario (the paper's numThre).
	MaxFaults int
}

// Windows materializes the trial's segment: the occupancy view generates
// it, then the scenario corrupts it.
func (si *ScenarioInstance) Windows(h *simhome.Home) ([]*window.Observation, error) {
	view := h
	if si.Occupancy != nil {
		view = h.WithOccupancy(*si.Occupancy)
	}
	seg := view.WindowRange(si.SegBase, si.SegBase+si.SegLen)
	if si.Benign {
		return seg, nil
	}
	return si.Scenario.Apply(h.Layout(), seg)
}

// ScenarioLibrary instantiates the library against one simulated home. The
// trial area starts at window faultBase (everything before it belongs to
// training and the clean replay) and spans the given number of whole days;
// trials rotate through the days so repeated trials of one scenario see
// different routine instances.
type ScenarioLibrary struct {
	home      *simhome.Home
	faultBase int
	days      int
}

// NewScenarioLibrary validates the trial area and builds the library.
func NewScenarioLibrary(home *simhome.Home, faultBase, days int) (*ScenarioLibrary, error) {
	if home == nil {
		return nil, fmt.Errorf("eval: nil home")
	}
	if days < 1 {
		return nil, fmt.Errorf("eval: scenario library needs >= 1 trial day")
	}
	if faultBase < 0 || faultBase+days*minutesPerDay > home.Windows() {
		return nil, fmt.Errorf("eval: trial area [%d, %d) exceeds the %d-window recording",
			faultBase, faultBase+days*minutesPerDay, home.Windows())
	}
	return &ScenarioLibrary{home: home, faultBase: faultBase, days: days}, nil
}

const (
	minutesPerDay = 24 * 60
	// scenarioSegW is the fault-segment length (6h, like the timing bench).
	scenarioSegW = 6 * 60
	// scenarioStreamDelay is the hold-window count stream faults insert —
	// two hours' hesitation, clear of the trained dwell buckets.
	scenarioStreamDelay = 135
)

// ghostID returns a device ID the registry has never issued, well clear of
// any future additions.
func (l *ScenarioLibrary) ghostID() device.ID {
	return device.ID(l.home.Registry().Len() + 1000)
}

// daySeg returns the base of the trial-day segment starting at hour h.
func (l *ScenarioLibrary) daySeg(trial, hour int) int {
	return l.faultBase + (trial%l.days)*minutesPerDay + hour*60
}

// activeBinaries returns binary sensors with >= min state flips in
// [lo, hi), ascending — fault targets whose corruption is observable.
func (l *ScenarioLibrary) activeBinaries(lo, hi, min int) []device.ID {
	return activeIDs(l.home.BinaryFlips(lo, hi), min)
}

// Trial instantiates one seeded trial of the named scenario.
func (l *ScenarioLibrary) Trial(name string, trial int, seed int64) (*ScenarioInstance, error) {
	if trial < 0 {
		return nil, fmt.Errorf("eval: negative trial %d", trial)
	}
	reg := l.home.Registry()
	acts := reg.Actuators()
	nums := reg.Numerics()
	if len(acts) == 0 || len(nums) == 0 {
		return nil, fmt.Errorf("eval: scenario library needs actuators and numeric sensors")
	}
	trialSeed := seed + int64(trial)*1009
	si := &ScenarioInstance{Name: name, SegLen: scenarioSegW, MaxFaults: 2}
	switch name {
	case ScenarioGhostDevice:
		si.Description = "spoofed device announces actuations under an ID the home never registered"
		si.SegBase = l.daySeg(trial, 8)
		si.Onset = 30
		si.Scenario = faults.Scenario{
			Name: name, Seed: trialSeed,
			Ghosts: []faults.GhostSpec{{Device: l.ghostID(), Onset: si.Onset, Every: 3}},
		}
	case ScenarioReplayAttack:
		si.Description = "an hour of captured evening traffic replayed into the night"
		si.DetectOnly = true
		si.SegBase = l.daySeg(trial, 18)
		si.Onset = 270
		si.Scenario = faults.Scenario{
			Name: name, Seed: trialSeed,
			Replays: []faults.ReplaySpec{{SrcFrom: 10 + (trial*17)%40, SrcLen: 60, At: si.Onset}},
		}
	case ScenarioMaliciousActuator:
		si.Description = "compromised actuator triggers on its own, outside every learned context"
		si.SegBase = l.daySeg(trial, 8)
		si.Onset = 40
		si.Scenario = faults.Scenario{
			Name: name, Seed: trialSeed,
			Faults: []faults.Fault{{Device: acts[trial%len(acts)], Type: faults.ActuatorSpurious, Onset: si.Onset}},
		}
	case ScenarioBenignGuest:
		si.Description = "a guest adopts the household routine for the day (must not alert)"
		si.Benign = true
		si.SegBase = l.daySeg(trial, 8)
		si.SegLen = 12 * 60
		si.Occupancy = &simhome.OccupancyChange{
			GuestFrom: si.SegBase, GuestTo: si.SegBase + si.SegLen,
		}
	case ScenarioBenignVacation:
		si.Description = "the house empties for a seven-hour day trip (must not alert)"
		si.Benign = true
		si.SegBase = l.daySeg(trial, 8)
		si.SegLen = 12 * 60
		si.Occupancy = &simhome.OccupancyChange{
			VacationFrom: si.SegBase + 2*60, VacationTo: si.SegBase + 9*60,
		}
	case ScenarioStorm2, ScenarioStorm3, ScenarioStorm4:
		si.SegBase = l.daySeg(trial, 8)
		sensorOnset := 30 + (trial*7)%15
		si.Onset = sensorOnset
		bins := l.activeBinaries(si.SegBase+sensorOnset, si.SegBase+si.SegLen, 3)
		if len(bins) == 0 {
			return nil, fmt.Errorf("eval: %s trial %d: no active binary sensors in segment", name, trial)
		}
		sensor := bins[trial%len(bins)]
		sc := faults.Scenario{Name: name, Seed: trialSeed, Faults: []faults.Fault{
			{Device: sensor, Type: faults.FailStop, Onset: sensorOnset},
			{Device: acts[trial%len(acts)], Type: faults.ActuatorSpurious, Onset: 120},
		}}
		si.Description = "fail-stopped sensor + rogue actuator with staggered onsets"
		if name == ScenarioStorm3 || name == ScenarioStorm4 {
			si.MaxFaults = 3
			si.Description = "storm-2 plus a slowly degrading sensor (stream fault)"
			slow := pickOther(bins, sensor, trial)
			if slow == sensor {
				return nil, fmt.Errorf("eval: %s trial %d: no second active binary sensor", name, trial)
			}
			sc.Faults = append(sc.Faults, faults.Fault{
				Device: slow, Type: faults.SlowDegradation, Onset: 60, Delay: scenarioStreamDelay,
			})
		}
		if name == ScenarioStorm4 {
			si.MaxFaults = 4
			si.Description = "storm-3 plus a stuck-at numeric sensor — four concurrent faults"
			sc.Faults = append(sc.Faults, faults.Fault{
				Device: nums[trial%len(nums)], Type: faults.StuckAt, Onset: 90,
			})
		}
		si.Scenario = sc
	default:
		return nil, fmt.Errorf("eval: unknown scenario %q (known: %v)", name, ScenarioNames())
	}
	if !si.Benign {
		si.GroundTruth = si.Scenario.FaultyDevices()
		if n := len(si.GroundTruth); n > si.MaxFaults {
			si.MaxFaults = n
		}
	}
	return si, nil
}

// pickOther returns a trial-rotated member of ids different from skip, or
// skip itself when ids has no other member.
func pickOther(ids []device.ID, skip device.ID, trial int) device.ID {
	if len(ids) < 2 {
		return skip
	}
	for i := 0; i < len(ids); i++ {
		c := ids[(trial+1+i)%len(ids)]
		if c != skip {
			return c
		}
	}
	return skip
}

// ScenarioBench configures the scenario-library benchmark.
type ScenarioBench struct {
	// TrainHours is the precomputation prefix (default 960, enough to arm
	// the interval sketches the storm-3/4 stream faults are caught by).
	TrainHours int
	// CleanHours is the fault-free replay that must stay silent
	// (default 24).
	CleanHours int
	// Trials is the seeded trial count per scenario (default 5).
	Trials int
	// Seed drives the simulation and every injection (default 17).
	Seed int64
}

func (o ScenarioBench) normalize() ScenarioBench {
	if o.TrainHours <= 0 {
		o.TrainHours = 960
	}
	if o.CleanHours <= 0 {
		o.CleanHours = 24
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 17
	}
	return o
}

// ScenarioResult scores one scenario across its trials.
type ScenarioResult struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Benign      bool   `json:"benign"`
	DetectOnly  bool   `json:"detect_only,omitempty"`
	Trials      int    `json:"trials"`
	// Detected counts trials with any violation at or after the onset.
	Detected     int     `json:"detected"`
	DetectionPct float64 `json:"detection_pct"`
	// FalseAlarms counts concluded alerts on benign trials (the floor says
	// zero).
	FalseAlarms int `json:"false_alarms"`
	// Identification micro-counts across trials: alerts naming ground-truth
	// devices (TP), alerts naming innocents (FP), ground-truth devices no
	// alert named (FN).
	TruePositives  int     `json:"true_positives"`
	FalsePositives int     `json:"false_positives"`
	FalseNegatives int     `json:"false_negatives"`
	IdentPrecision float64 `json:"ident_precision"`
	IdentRecall    float64 `json:"ident_recall"`
	// AllNamed counts trials whose alerts covered every injected device —
	// the storm-2 gate quantity.
	AllNamed    int     `json:"all_named"`
	AllNamedPct float64 `json:"all_named_pct"`
}

// ScenarioBenchResult is the outcome of one scenario-library run.
type ScenarioBenchResult struct {
	TrainHours int   `json:"train_hours"`
	CleanHours int   `json:"clean_hours"`
	Trials     int   `json:"trials"`
	Seed       int64 `json:"seed"`
	Groups     int   `json:"groups"`
	// CleanFalseAlarms scores the fault-free replay through the multi-fault
	// detector (must be zero for the benign floors to mean anything).
	CleanFalseAlarms int `json:"clean_false_alarms"`
	// BenignFalseAlarms totals alerts across the benign scenarios' trials
	// (floor: zero).
	BenignFalseAlarms int `json:"benign_false_alarms"`
	// Storm2AllNamedPct is the gated headline: trials of the two-fault
	// storm whose alerts named every injected device (floor: >= 80).
	Storm2AllNamedPct float64 `json:"storm2_all_named_pct"`

	Scenarios []ScenarioResult `json:"scenarios"`
}

// RunScenarioBench trains a multi-fault detector's context on the
// two-resident testbed home, verifies a clean day stays silent, then runs
// every library scenario. It errors when any benign scenario (or the clean
// replay) raises an alert, or when the two-fault storm's alerts name every
// injected device in fewer than 80% of trials.
func RunScenarioBench(o ScenarioBench) (*ScenarioBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDTwoR()
	spec.Name = "scenario-bench"
	const trialDays = 2
	spec.Hours = o.TrainHours + o.CleanHours + trialDays*24
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}

	trainW := o.TrainHours * 60
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	ctx, err := tr.Context()
	if err != nil {
		return nil, err
	}

	res := &ScenarioBenchResult{
		TrainHours: o.TrainHours,
		CleanHours: o.CleanHours,
		Trials:     o.Trials,
		Seed:       o.Seed,
		Groups:     ctx.NumGroups(),
	}

	// Clean replay through the multi-fault configuration.
	cleanW := o.CleanHours * 60
	det, err := core.New(ctx, core.WithConfig(core.Config{MaxFaults: 2}))
	if err != nil {
		return nil, err
	}
	for i := trainW; i < trainW+cleanW; i++ {
		r, err := det.Process(home.Window(i))
		if err != nil {
			return nil, err
		}
		res.CleanFalseAlarms += len(r.Alerts)
	}

	lib, err := NewScenarioLibrary(home, trainW+cleanW, trialDays)
	if err != nil {
		return nil, err
	}
	for _, name := range ScenarioNames() {
		sr, err := runScenario(ctx, home, lib, name, o)
		if err != nil {
			return res, err
		}
		res.Scenarios = append(res.Scenarios, *sr)
		if sr.Benign {
			res.BenignFalseAlarms += sr.FalseAlarms
		}
		if sr.Name == ScenarioStorm2 {
			res.Storm2AllNamedPct = sr.AllNamedPct
		}
	}

	switch {
	case res.CleanFalseAlarms > 0:
		return res, fmt.Errorf("eval: clean replay raised %d alerts", res.CleanFalseAlarms)
	case res.BenignFalseAlarms > 0:
		return res, fmt.Errorf("eval: benign scenarios raised %d alerts, want 0", res.BenignFalseAlarms)
	case res.Storm2AllNamedPct < 80:
		return res, fmt.Errorf("eval: storm-2 named every injected device in %.0f%% of trials, want >= 80%%",
			res.Storm2AllNamedPct)
	}
	return res, nil
}

// runScenario scores all trials of one scenario.
func runScenario(ctx *core.Context, home *simhome.Home, lib *ScenarioLibrary, name string, o ScenarioBench) (*ScenarioResult, error) {
	sr := &ScenarioResult{Name: name, Trials: o.Trials}
	for trial := 0; trial < o.Trials; trial++ {
		si, err := lib.Trial(name, trial, o.Seed*1000)
		if err != nil {
			return nil, err
		}
		sr.Description = si.Description
		sr.Benign = si.Benign
		sr.DetectOnly = si.DetectOnly
		win, err := si.Windows(home)
		if err != nil {
			return nil, err
		}
		det, err := core.New(ctx, core.WithConfig(core.Config{MaxFaults: si.MaxFaults}))
		if err != nil {
			return nil, err
		}
		detected := false
		named := make(map[device.ID]bool)
		alerts := 0
		for w, obs := range win {
			r, err := det.Process(obs)
			if err != nil {
				return nil, err
			}
			if r.Violation != core.CheckNone && w >= si.Onset {
				detected = true
			}
			for _, al := range r.Alerts {
				alerts++
				for _, id := range al.Devices {
					named[id] = true
				}
			}
		}
		if si.Benign {
			sr.FalseAlarms += alerts
			continue
		}
		if detected {
			sr.Detected++
		}
		if si.DetectOnly {
			continue
		}
		truth := make(map[device.ID]bool, len(si.GroundTruth))
		for _, id := range si.GroundTruth {
			truth[id] = true
		}
		covered := 0
		for id := range named {
			if truth[id] {
				sr.TruePositives++
				covered++
			} else {
				sr.FalsePositives++
			}
		}
		sr.FalseNegatives += len(si.GroundTruth) - covered
		if covered == len(si.GroundTruth) {
			sr.AllNamed++
		}
	}
	if !sr.Benign {
		sr.DetectionPct = 100 * float64(sr.Detected) / float64(sr.Trials)
		if tp := sr.TruePositives; tp+sr.FalsePositives > 0 {
			sr.IdentPrecision = float64(tp) / float64(tp+sr.FalsePositives)
		}
		if tp := sr.TruePositives; tp+sr.FalseNegatives > 0 {
			sr.IdentRecall = float64(tp) / float64(tp+sr.FalseNegatives)
		}
		if !sr.DetectOnly {
			sr.AllNamedPct = 100 * float64(sr.AllNamed) / float64(sr.Trials)
		}
	}
	return sr, nil
}
