package eval

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/simhome"
	"repro/internal/wire"
)

// HubBench configures the multi-tenant throughput benchmark: M simulated
// homes replay concurrently through one hub on an N-shard worker pool.
// Detection output is bit-identical at any shard count (the hub tests
// prove that); this benchmark measures what sharding buys in wall-clock.
//
// Every run replays the same streams twice — once through the legacy JSON
// wire path (marshal, unmarshal, per-event Ingest) and once through the
// binary batch path (wire.AppendReport, wire.DecodeBatch, one IngestBatch
// per batch) — so the result carries both the headline binary throughput
// and the JSON baseline it is measured against, plus a bit-identity check
// over the per-home end-of-replay counters.
type HubBench struct {
	// Homes is the number of concurrent tenants (default 8).
	Homes int
	// Shards sizes the hub worker pool (default 4).
	Shards int
	// Hours of stream replayed per home (default 2).
	Hours int
	// Seed drives the simulation (default 21).
	Seed int64
	// QueueDepth bounds each shard queue (default 256).
	QueueDepth int
	// BatchSize is how many readings travel per simulated report on both
	// wire paths (default 64).
	BatchSize int
	// Passes is how many replays each wire path runs; the fastest pass is
	// reported (default 3). A single replay finishes in milliseconds, so
	// best-of-N is what keeps the JSON/binary speedup ratio stable across
	// scheduler noise.
	Passes int
}

func (o HubBench) normalize() HubBench {
	if o.Homes <= 0 {
		o.Homes = 8
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Hours <= 0 {
		o.Hours = 2
	}
	if o.Seed == 0 {
		o.Seed = 21
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if o.Passes <= 0 {
		o.Passes = 3
	}
	return o
}

// HubHomeResult is one tenant's end-of-replay counters.
type HubHomeResult struct {
	Home  string        `json:"home"`
	Stats gateway.Stats `json:"stats"`
}

// HubBenchResult is the outcome of one hub benchmark run. EventsPerSec is
// the binary batch path (the headline number the perf gate tracks);
// JSONEventsPerSec is the legacy path over the identical streams, and
// Speedup their ratio. BitIdentical reports whether every home finished
// both passes with identical counters.
type HubBenchResult struct {
	Homes            int             `json:"homes"`
	Shards           int             `json:"shards"`
	Hours            int             `json:"hours_per_home"`
	BatchSize        int             `json:"batch_size"`
	TrainTime        time.Duration   `json:"-"`
	ReplayTime       time.Duration   `json:"-"`
	TrainMS          float64         `json:"train_ms"`
	ReplayMS         float64         `json:"replay_ms"`
	JSONReplayMS     float64         `json:"json_replay_ms"`
	Events           int64           `json:"events"`
	Windows          int64           `json:"windows"`
	Alerts           int64           `json:"alerts"`
	EventsPerSec     float64         `json:"events_per_sec"`
	JSONEventsPerSec float64         `json:"json_events_per_sec"`
	Speedup          float64         `json:"speedup"`
	BitIdentical     bool            `json:"bit_identical"`
	PerShard         []hub.ShardStat `json:"per_shard"`
	PerHome          []HubHomeResult `json:"per_home"`
}

// hubReplay is one full replay pass: a fresh hub, o.Homes tenants on the
// shared context, one producer per home pumping its stream in BatchSize
// reports over the selected wire path. It returns the wall-clock, shard
// stats, and per-home counters.
func hubReplay(o HubBench, cctx *core.Context, names []string, streams [][]event.Event, binary bool) (time.Duration, []hub.ShardStat, []HubHomeResult, error) {
	h, err := hub.New(hub.WithShards(o.Shards), hub.WithQueueDepth(o.QueueDepth))
	if err != nil {
		return 0, nil, nil, err
	}
	defer h.Close()
	for _, name := range names {
		if _, err := h.Register(name, cctx, gateway.WithConfig(core.Config{})); err != nil {
			return 0, nil, nil, err
		}
	}

	// One sink keeps the hub alert buffer from filling; alert counts come
	// from the per-tenant stats afterwards.
	sinkStop := make(chan struct{})
	sinkDone := make(chan struct{})
	go func() {
		defer close(sinkDone)
		for {
			select {
			case <-h.Alerts():
			case <-sinkStop:
				return
			}
		}
	}()

	replayStart := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, o.Homes)
	end := time.Duration(o.Hours) * time.Hour
	for i := 0; i < o.Homes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- pumpHome(h, names[i], streams[i], o.BatchSize, end, binary)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, nil, nil, err
		}
	}
	if err := h.DrainAll(); err != nil {
		return 0, nil, nil, err
	}
	replayTime := time.Since(replayStart)
	close(sinkStop)
	<-sinkDone

	perShard := h.ShardStats()
	perHome := make([]HubHomeResult, 0, len(names))
	for _, name := range names {
		tn, ok := h.Tenant(name)
		if !ok {
			return 0, nil, nil, fmt.Errorf("eval: tenant %s vanished mid-bench", name)
		}
		perHome = append(perHome, HubHomeResult{Home: name, Stats: tn.Stats()})
	}
	return replayTime, perShard, perHome, nil
}

// pumpHome replays one home's stream through the chosen wire path,
// including the encode/decode work a real device + front would do: the
// measured difference between the paths is the codec plus the per-event vs
// per-batch routing, not just raw channel throughput.
func pumpHome(h *hub.Hub, name string, stream []event.Event, batchSize int, end time.Duration, binary bool) error {
	var enc []byte
	scratch := make([]event.Event, 0, batchSize)
	for off := 0; off < len(stream); off += batchSize {
		batch := stream[off:min(off+batchSize, len(stream))]
		if binary {
			enc = wire.AppendReport(enc[:0], batch)
			b, err := wire.DecodeBatch(enc, scratch[:0])
			if err != nil {
				return err
			}
			if err := h.IngestBatch(name, b.Events); err != nil {
				return err
			}
			continue
		}
		wireBatch := make([]gateway.WireEvent, len(batch))
		for j, e := range batch {
			wireBatch[j] = gateway.WireEvent{AtMS: e.At.Milliseconds(), Device: int(e.Device), Value: e.Value}
		}
		payload, err := json.Marshal(wireBatch)
		if err != nil {
			return err
		}
		var decoded []gateway.WireEvent
		if err := json.Unmarshal(payload, &decoded); err != nil {
			return err
		}
		for _, w := range decoded {
			e := event.Event{
				At:     time.Duration(w.AtMS) * time.Millisecond,
				Device: device.ID(w.Device),
				Value:  w.Value,
			}
			if err := h.Ingest(name, e); err != nil {
				return err
			}
		}
	}
	if binary {
		enc = wire.AppendAdvance(enc[:0], end)
		b, err := wire.DecodeBatch(enc, scratch[:0])
		if err != nil {
			return err
		}
		return h.Advance(name, b.At)
	}
	payload, err := json.Marshal(struct {
		AtMS int64 `json:"at"`
	}{AtMS: end.Milliseconds()})
	if err != nil {
		return err
	}
	var adv struct {
		AtMS int64 `json:"at"`
	}
	if err := json.Unmarshal(payload, &adv); err != nil {
		return err
	}
	return h.Advance(name, time.Duration(adv.AtMS)*time.Millisecond)
}

// statsIdentical reports whether two per-home result sets carry the same
// counters home for home.
func statsIdentical(a, b []HubHomeResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Home != b[i].Home || a[i].Stats != b[i].Stats {
			return false
		}
	}
	return true
}

// RunHubBench trains one context, registers o.Homes tenants against it,
// and replays a distinct per-home stream slice through the hub with one
// producer goroutine per home — twice, once per wire path. Replay
// wall-clock excludes training.
func RunHubBench(o HubBench) (*HubBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDHouseA()
	spec.Name = "hub-bench"
	trainH := 3 * 24
	spec.Hours = trainH + o.Homes + o.Hours + 1
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	trainStart := time.Now()
	trainW := trainH * 60
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	cctx, err := tr.Context()
	if err != nil {
		return nil, err
	}
	trainTime := time.Since(trainStart)

	// Pre-materialize every home's slice so producers only pump. Event
	// times are truncated to milliseconds — the JSON wire quantizes to ms,
	// so ms-aligned streams are what makes the two passes byte-comparable.
	streams := make([][]event.Event, o.Homes)
	for i := range streams {
		start := trainW + i*60
		evts := home.Events(start, start+o.Hours*60)
		streams[i] = make([]event.Event, len(evts))
		for j, e := range evts {
			e.At -= time.Duration(start) * time.Minute
			e.At = e.At.Truncate(time.Millisecond)
			streams[i][j] = e
		}
	}
	names := make([]string, o.Homes)
	for i := range names {
		names[i] = fmt.Sprintf("home-%02d", i)
	}

	// Best-of-Passes per wire path: each pass is a full fresh-hub replay,
	// bit-identity is required of every pass, and the fastest time wins.
	var (
		jsonTime, binTime time.Duration
		binHomes          []HubHomeResult
		perShard          []hub.ShardStat
		identical         = true
	)
	for pass := 0; pass < o.Passes; pass++ {
		jt, _, jh, err := hubReplay(o, cctx, names, streams, false)
		if err != nil {
			return nil, err
		}
		bt, ps, bh, err := hubReplay(o, cctx, names, streams, true)
		if err != nil {
			return nil, err
		}
		identical = identical && statsIdentical(jh, bh)
		if pass == 0 || jt < jsonTime {
			jsonTime = jt
		}
		if pass == 0 || bt < binTime {
			binTime, perShard, binHomes = bt, ps, bh
		}
	}

	res := &HubBenchResult{
		Homes:        o.Homes,
		Shards:       o.Shards,
		Hours:        o.Hours,
		BatchSize:    o.BatchSize,
		TrainTime:    trainTime,
		ReplayTime:   binTime,
		TrainMS:      float64(trainTime.Microseconds()) / 1000,
		ReplayMS:     float64(binTime.Microseconds()) / 1000,
		JSONReplayMS: float64(jsonTime.Microseconds()) / 1000,
		BitIdentical: identical,
		PerShard:     perShard,
		PerHome:      binHomes,
	}
	for _, hr := range binHomes {
		res.Events += hr.Stats.Events
		res.Windows += hr.Stats.Windows
		res.Alerts += hr.Stats.Alerts
	}
	if s := binTime.Seconds(); s > 0 {
		res.EventsPerSec = float64(res.Events) / s
	}
	if s := jsonTime.Seconds(); s > 0 {
		res.JSONEventsPerSec = float64(res.Events) / s
	}
	if res.JSONEventsPerSec > 0 {
		res.Speedup = res.EventsPerSec / res.JSONEventsPerSec
	}
	return res, nil
}
