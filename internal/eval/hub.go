package eval

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/simhome"
)

// HubBench configures the multi-tenant throughput benchmark: M simulated
// homes replay concurrently through one hub on an N-shard worker pool.
// Detection output is bit-identical at any shard count (the hub tests
// prove that); this benchmark measures what sharding buys in wall-clock.
type HubBench struct {
	// Homes is the number of concurrent tenants (default 8).
	Homes int
	// Shards sizes the hub worker pool (default 4).
	Shards int
	// Hours of stream replayed per home (default 2).
	Hours int
	// Seed drives the simulation (default 21).
	Seed int64
	// QueueDepth bounds each shard queue (default 256).
	QueueDepth int
}

func (o HubBench) normalize() HubBench {
	if o.Homes <= 0 {
		o.Homes = 8
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Hours <= 0 {
		o.Hours = 2
	}
	if o.Seed == 0 {
		o.Seed = 21
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// HubHomeResult is one tenant's end-of-replay counters.
type HubHomeResult struct {
	Home  string        `json:"home"`
	Stats gateway.Stats `json:"stats"`
}

// HubBenchResult is the outcome of one hub benchmark run.
type HubBenchResult struct {
	Homes        int             `json:"homes"`
	Shards       int             `json:"shards"`
	Hours        int             `json:"hours_per_home"`
	TrainTime    time.Duration   `json:"-"`
	ReplayTime   time.Duration   `json:"-"`
	TrainMS      float64         `json:"train_ms"`
	ReplayMS     float64         `json:"replay_ms"`
	Events       int64           `json:"events"`
	Windows      int64           `json:"windows"`
	Alerts       int64           `json:"alerts"`
	EventsPerSec float64         `json:"events_per_sec"`
	PerShard     []hub.ShardStat `json:"per_shard"`
	PerHome      []HubHomeResult `json:"per_home"`
}

// RunHubBench trains one context, registers o.Homes tenants against it,
// and replays a distinct per-home stream slice through the hub with one
// producer goroutine per home. Replay wall-clock excludes training.
func RunHubBench(o HubBench) (*HubBenchResult, error) {
	o = o.normalize()
	spec := simhome.SpecDHouseA()
	spec.Name = "hub-bench"
	trainH := 3 * 24
	spec.Hours = trainH + o.Homes + o.Hours + 1
	home, err := simhome.New(spec, o.Seed)
	if err != nil {
		return nil, err
	}
	trainStart := time.Now()
	trainW := trainH * 60
	tr := core.NewTrainer(home.Layout(), time.Minute)
	for i := 0; i < trainW; i++ {
		if err := tr.Calibrate(home.Window(i)); err != nil {
			return nil, err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return nil, err
	}
	for i := 0; i < trainW; i++ {
		if err := tr.Learn(home.Window(i)); err != nil {
			return nil, err
		}
	}
	cctx, err := tr.Context()
	if err != nil {
		return nil, err
	}
	trainTime := time.Since(trainStart)

	// Pre-materialize every home's slice so producers only pump.
	streams := make([][]event.Event, o.Homes)
	for i := range streams {
		start := trainW + i*60
		evts := home.Events(start, start+o.Hours*60)
		streams[i] = make([]event.Event, len(evts))
		for j, e := range evts {
			e.At -= time.Duration(start) * time.Minute
			streams[i][j] = e
		}
	}

	h, err := hub.New(hub.WithShards(o.Shards), hub.WithQueueDepth(o.QueueDepth))
	if err != nil {
		return nil, err
	}
	defer h.Close()
	names := make([]string, o.Homes)
	for i := range names {
		names[i] = fmt.Sprintf("home-%02d", i)
		if _, err := h.Register(names[i], cctx, gateway.WithConfig(core.Config{})); err != nil {
			return nil, err
		}
	}

	// One sink keeps the hub alert buffer from filling; alert counts come
	// from the per-tenant stats afterwards.
	sinkStop := make(chan struct{})
	sinkDone := make(chan struct{})
	go func() {
		defer close(sinkDone)
		for {
			select {
			case <-h.Alerts():
			case <-sinkStop:
				return
			}
		}
	}()

	replayStart := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, o.Homes)
	end := time.Duration(o.Hours) * time.Hour
	for i := 0; i < o.Homes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, e := range streams[i] {
				if err := h.Ingest(names[i], e); err != nil {
					errs <- err
					return
				}
			}
			errs <- h.Advance(names[i], end)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := h.DrainAll(); err != nil {
		return nil, err
	}
	replayTime := time.Since(replayStart)
	close(sinkStop)
	<-sinkDone

	res := &HubBenchResult{
		Homes:      o.Homes,
		Shards:     o.Shards,
		Hours:      o.Hours,
		TrainTime:  trainTime,
		ReplayTime: replayTime,
		TrainMS:    float64(trainTime.Microseconds()) / 1000,
		ReplayMS:   float64(replayTime.Microseconds()) / 1000,
		PerShard:   h.ShardStats(),
	}
	for _, name := range names {
		tn, ok := h.Tenant(name)
		if !ok {
			return nil, fmt.Errorf("eval: tenant %s vanished mid-bench", name)
		}
		st := tn.Stats()
		res.Events += st.Events
		res.Windows += st.Windows
		res.Alerts += st.Alerts
		res.PerHome = append(res.PerHome, HubHomeResult{Home: name, Stats: st})
	}
	if s := replayTime.Seconds(); s > 0 {
		res.EventsPerSec = float64(res.Events) / s
	}
	return res, nil
}
