// Package cluster federates several hub nodes into one coordinator-less
// detection fabric. Every node knows the full peer list; home placement is
// rendezvous (highest-random-weight) hashing over the nodes currently
// believed alive, so any node can answer "who owns this home" locally and
// all nodes converge on the same answer without electing anything. A home's
// durable state (checkpoint + WAL) lives in a state directory the nodes
// share, so ownership can move two ways: a live drain-and-handoff that
// ships the running tenant's state between nodes, and a cold fail-over
// where survivors re-place a dead node's homes and restore them from disk.
// Either way the restored tenant must reproduce the donor's counters
// bit-for-bit — the same oracle the single-node crash drills gate on.
package cluster

import (
	"hash/fnv"
	"sort"
)

// score is the rendezvous weight of (node, home): a 64-bit FNV-1a over the
// node ID, a NUL separator (so "ab"+"c" and "a"+"bc" cannot collide), and
// the home ID, pushed through a finalizer mix. The finalizer matters: raw
// FNV-1a barely diffuses trailing-byte differences into the high bits, so
// without it the node whose ID hashes highest would win every home and the
// "distribution" would be one node hosting everything. Every node computes
// the same weights from the same inputs — that determinism is the whole
// coordination protocol.
func score(node, home string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(node)) //nolint:errcheck // fnv never fails
	f.Write([]byte{0})    //nolint:errcheck // fnv never fails
	f.Write([]byte(home)) //nolint:errcheck // fnv never fails
	return mix64(f.Sum64())
}

// mix64 is the splitmix64 finalizer: a fixed bijective avalanche so every
// input bit flips each output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the rendezvous owner of home among nodes: the node with
// the highest weight, ties broken lexicographically so the answer is total.
// An empty node list returns "". Unlike mod-N hashing, removing one node
// re-places only that node's homes — every other home keeps its owner,
// which is what bounds fail-over work to the dead node's share.
func Owner(home string, nodes []string) string {
	var best string
	var bestScore uint64
	for _, n := range nodes {
		s := score(n, home)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Placement maps every home to its owner, owners to sorted home lists.
func Placement(homes, nodes []string) map[string][]string {
	out := make(map[string][]string, len(nodes))
	for _, h := range homes {
		o := Owner(h, nodes)
		if o != "" {
			out[o] = append(out[o], h)
		}
	}
	for _, hs := range out {
		sort.Strings(hs)
	}
	return out
}
