package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/telemetry"
)

// Cluster metric names, registered on the node's hub registry so they ride
// the same exposition (and the merged cluster /metrics stamps them with a
// node label like everything else).
const (
	metricHandoffs     = "dice_cluster_handoffs_total"
	metricFailovers    = "dice_cluster_failovers_total"
	metricReplacements = "dice_cluster_replacements_total"
	metricRetries      = "dice_cluster_retries_total"
	metricProxied      = "dice_cluster_proxied_total"
	metricHeartbeats   = "dice_cluster_heartbeats_total"
	metricAlivePeers   = "dice_cluster_alive_peers"
	metricSuspectPeers = "dice_cluster_suspect_peers"
)

type nodeMetrics struct {
	handoffs     *telemetry.Counter
	failovers    *telemetry.Counter
	replacements *telemetry.Counter
	retries      *telemetry.Counter
	proxied      *telemetry.Counter
	heartbeats   *telemetry.Counter
	alivePeers   *telemetry.Gauge
	suspectPeers *telemetry.Gauge
}

func newNodeMetrics(reg *telemetry.Registry) nodeMetrics {
	return nodeMetrics{
		handoffs:     reg.Counter(metricHandoffs, "Tenants handed off to a peer by drain-and-ship migration."),
		failovers:    reg.Counter(metricFailovers, "Peer deaths that triggered a re-placement sweep on this node."),
		replacements: reg.Counter(metricReplacements, "Homes this node adopted from durable state (fail-over or lazy placement)."),
		retries:      reg.Counter(metricRetries, "Inter-node call retries (exponential backoff attempts after the first)."),
		proxied:      reg.Counter(metricProxied, "Ingest calls proxied to the owning peer."),
		heartbeats:   reg.Counter(metricHeartbeats, "Heartbeats received from peers."),
		alivePeers:   reg.Gauge(metricAlivePeers, "Peers currently believed alive."),
		suspectPeers: reg.Gauge(metricSuspectPeers, "Peers currently under suspicion (missed heartbeats, not yet declared dead)."),
	}
}

// Resolver maps a home ID to the trained context and gateway options its
// tenant needs — how a node materializes a home it has never hosted, for
// fail-over cold restores and lazy first-contact placement.
type Resolver func(home string) (*core.Context, []gateway.Option, error)

// Option configures a Node.
type Option func(*nodeOptions)

type nodeOptions struct {
	listen       string
	peers        map[string]string
	heartbeat    time.Duration
	suspectAfter time.Duration
	deadAfter    time.Duration
	retries      int
	retryBackoff time.Duration
	callTimeout  time.Duration
	transport    http.RoundTripper
	hubOpts      []hub.Option
	catalog      []string
	resolve      Resolver
}

// WithListen sets the node's HTTP listen address (default "127.0.0.1:0").
func WithListen(addr string) Option { return func(o *nodeOptions) { o.listen = addr } }

// WithPeers sets the static peer table: node ID → host:port. The node's
// own ID must not appear in it.
func WithPeers(peers map[string]string) Option {
	return func(o *nodeOptions) {
		o.peers = make(map[string]string, len(peers))
		for id, addr := range peers {
			o.peers[id] = addr
		}
	}
}

// WithCatalog declares the universe of homes the cluster serves and how to
// materialize each one. The catalog is what lets a survivor re-place a
// dead peer's homes: placement is computed over it, and the resolver
// rebuilds any tenant from its trained context + shared durable state.
func WithCatalog(homes []string, resolve Resolver) Option {
	return func(o *nodeOptions) {
		o.catalog = append([]string(nil), homes...)
		o.resolve = resolve
	}
}

// WithHubOptions passes options through to the node's embedded hub —
// checkpoint dir, WAL dir, shards. Cluster recovery semantics assume every
// node points these at the same shared state tree.
func WithHubOptions(opts ...hub.Option) Option {
	return func(o *nodeOptions) { o.hubOpts = append(o.hubOpts, opts...) }
}

// WithHeartbeat tunes failure detection: peers heartbeat every interval;
// a peer silent for suspectAfter is suspect (still routed to), and one
// silent for deadAfter is declared dead — its homes are re-placed.
// Defaults: 500ms / 2s / 5s.
func WithHeartbeat(interval, suspectAfter, deadAfter time.Duration) Option {
	return func(o *nodeOptions) {
		o.heartbeat = interval
		o.suspectAfter = suspectAfter
		o.deadAfter = deadAfter
	}
}

// WithRetry bounds inter-node call retries: up to retries re-attempts
// after the first try, exponential backoff from base with full jitter,
// capped at 2s. Defaults: 4 retries, 50ms base.
func WithRetry(retries int, base time.Duration) Option {
	return func(o *nodeOptions) {
		o.retries = retries
		o.retryBackoff = base
	}
}

// WithCallTimeout bounds each single inter-node request (default 5s).
func WithCallTimeout(d time.Duration) Option {
	return func(o *nodeOptions) { o.callTimeout = d }
}

// WithTransport injects the HTTP transport for all inter-node calls —
// the hook the chaos drills use to drop, partition, and slow links.
func WithTransport(rt http.RoundTripper) Option {
	return func(o *nodeOptions) { o.transport = rt }
}

// Peer failure-detector states.
const (
	peerAlive int32 = iota
	peerSuspect
	peerDead
)

// peer is one remote node as this node sees it.
type peer struct {
	id       string
	addr     string
	lastSeen atomic.Int64 // unix nanos of last proof of life
	state    atomic.Int32
}

// Node is one member of the hub cluster: an embedded multi-tenant hub plus
// the membership, placement, and handoff machinery that federates it.
type Node struct {
	id    string
	o     nodeOptions
	h     *hub.Hub
	hc    *http.Client
	met   nodeMetrics
	peers map[string]*peer // static table; per-peer state is atomic

	mu        sync.Mutex
	hints     map[string]string // home → node last seen hosting it
	exporting map[string]bool   // homes mid-handoff: evicted here, not yet adopted remotely

	srv    *http.Server
	ln     net.Listener
	stop   chan struct{}
	loops  sync.WaitGroup
	closed atomic.Bool
}

// New builds a node. Start must be called before it serves or gossips.
func New(id string, opts ...Option) (*Node, error) {
	if id == "" {
		return nil, errors.New("cluster: empty node ID")
	}
	o := nodeOptions{
		listen:       "127.0.0.1:0",
		heartbeat:    500 * time.Millisecond,
		suspectAfter: 2 * time.Second,
		deadAfter:    5 * time.Second,
		retries:      4,
		retryBackoff: 50 * time.Millisecond,
		callTimeout:  5 * time.Second,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if _, ok := o.peers[id]; ok {
		return nil, fmt.Errorf("cluster: node %q lists itself as a peer", id)
	}
	h, err := hub.New(o.hubOpts...)
	if err != nil {
		return nil, err
	}
	n := &Node{
		id:        id,
		o:         o,
		h:         h,
		hc:        &http.Client{Transport: o.transport},
		met:       newNodeMetrics(h.Telemetry()),
		peers:     make(map[string]*peer, len(o.peers)),
		hints:     make(map[string]string),
		exporting: make(map[string]bool),
		stop:      make(chan struct{}),
	}
	for pid, addr := range o.peers {
		n.peers[pid] = &peer{id: pid, addr: addr}
	}
	// Bind in New so Addr is known (and peer tables can be built from it)
	// before any loop starts; Start begins serving and gossiping.
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		h.Close() //nolint:errcheck // construction failed
		return nil, err
	}
	n.ln = ln
	return n, nil
}

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.id }

// SetPeer adds or replaces one entry in the static peer table. It exists
// for the boot order where addresses are not known until every node has
// bound (New picks the port, SetPeer spreads it): call it between New and
// Start only — the running loops read the table without locks.
func (n *Node) SetPeer(id, addr string) error {
	if id == n.id {
		return fmt.Errorf("cluster: node %q cannot peer with itself", id)
	}
	n.peers[id] = &peer{id: id, addr: addr}
	return nil
}

// Hub exposes the embedded hub — drills and benches read tenant stats and
// alerts through it.
func (n *Node) Hub() *hub.Hub { return n.h }

// Addr returns the bound HTTP address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Closed reports whether the node has been closed or killed.
func (n *Node) Closed() bool { return n.closed.Load() }

// Exported cluster metric names, for callers reading counters via Metric.
const (
	MetricHandoffs     = metricHandoffs
	MetricFailovers    = metricFailovers
	MetricReplacements = metricReplacements
	MetricRetries      = metricRetries
	MetricProxied      = metricProxied
)

// Metric returns the current value of one of this node's cluster counters
// (benches read them in-process instead of scraping /metrics). Unknown
// names return 0.
func (n *Node) Metric(name string) int64 {
	switch name {
	case MetricHandoffs:
		return n.met.handoffs.Value()
	case MetricFailovers:
		return n.met.failovers.Value()
	case MetricReplacements:
		return n.met.replacements.Value()
	case MetricRetries:
		return n.met.retries.Value()
	case MetricProxied:
		return n.met.proxied.Value()
	}
	return 0
}

// Start begins serving on the listener bound at New and starts the
// heartbeat and failure-monitor loops. Peers begin with the benefit of
// the doubt (alive as of now) so a cold cluster boot does not thrash
// placement while the first heartbeats cross.
func (n *Node) Start() error {
	n.srv = &http.Server{Handler: n.handler()}
	now := time.Now().UnixNano()
	for _, p := range n.peers {
		p.lastSeen.Store(now)
	}
	n.met.alivePeers.Set(int64(len(n.peers)))
	go n.srv.Serve(n.ln) //nolint:errcheck // ErrServerClosed after Close
	n.loops.Add(2)
	go n.heartbeatLoop()
	go n.monitorLoop()
	return nil
}

// Close stops the loops and the server, then closes the hub cleanly
// (final checkpoints written).
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(n.stop)
	n.loops.Wait()
	if n.srv != nil {
		n.srv.Close() //nolint:errcheck // shutting down
	} else {
		n.ln.Close() //nolint:errcheck // never served
	}
	return n.h.Close()
}

// Kill is the drill-grade crash: loops and server die, and the hub takes
// its in-process SIGKILL (queued ops lost, no parting checkpoint). The
// node's durable state is whatever was on disk at the moment of death.
func (n *Node) Kill() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	close(n.stop)
	n.loops.Wait()
	if n.srv != nil {
		n.srv.Close() //nolint:errcheck // dying
	} else {
		n.ln.Close() //nolint:errcheck // never served
	}
	n.h.Kill()
}

// aliveNodes is the placement population: this node plus every peer not
// declared dead (suspects still count — suspicion throttles trust, death
// moves state), sorted for deterministic iteration.
func (n *Node) aliveNodes() []string {
	out := []string{n.id}
	for _, p := range n.peers {
		if p.state.Load() != peerDead {
			out = append(out, p.id)
		}
	}
	sort.Strings(out)
	return out
}

// alivePeerList returns non-dead peers, sorted by ID.
func (n *Node) alivePeerList() []*peer {
	out := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		if p.state.Load() != peerDead {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// hintFor returns the cached host for home, if it is still routable.
func (n *Node) hintFor(home string) (string, bool) {
	n.mu.Lock()
	id, ok := n.hints[home]
	n.mu.Unlock()
	if !ok || id == n.id {
		return "", false
	}
	p, ok := n.peers[id]
	if !ok || p.state.Load() == peerDead {
		return "", false
	}
	return id, true
}

// isExporting reports whether home is in the handoff dead zone: exported
// off this node but not yet confirmed adopted. Ingests bounce with a
// retryable conflict instead of racing the adopter into a double-host.
func (n *Node) isExporting(home string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.exporting[home]
}

func (n *Node) setExporting(home string, on bool) {
	n.mu.Lock()
	if on {
		n.exporting[home] = true
	} else {
		delete(n.exporting, home)
	}
	n.mu.Unlock()
}

func (n *Node) setHint(home, nodeID string) {
	n.mu.Lock()
	if nodeID == "" || nodeID == n.id {
		delete(n.hints, home)
	} else {
		n.hints[home] = nodeID
	}
	n.mu.Unlock()
}

// ensureLocal makes home servable on this node if the cluster agrees it
// should be: if any live peer already hosts it (e.g. it was manually
// migrated away from its rendezvous owner), that peer's ID is returned and
// nothing is adopted — single-writer discipline means hosting is the
// source of truth and placement only decides un-hosted homes. Otherwise
// the home is materialized from the catalog and restored from shared
// durable state.
func (n *Node) ensureLocal(ctx context.Context, home string) (hostedBy string, err error) {
	if _, ok := n.h.Tenant(home); ok {
		return "", nil
	}
	for _, p := range n.alivePeerList() {
		// Probes retry transport errors: mistaking a dropped packet for
		// "nobody hosts it" would adopt a home out from under its live
		// host — the one split-brain this design must never manufacture.
		body, err := n.call(ctx, http.MethodGet, "http://"+p.addr+"/cluster/hosted/"+home, nil)
		if err == nil && string(body) == "true" {
			n.setHint(home, p.id)
			return p.id, nil
		}
	}
	if n.o.resolve == nil {
		return "", fmt.Errorf("%w: %q (no catalog resolver)", hub.ErrUnknownHome, home)
	}
	cctx, gwOpts, err := n.o.resolve(home)
	if err != nil {
		return "", err
	}
	tn, err := n.h.Register(home, cctx, gwOpts...)
	if err != nil {
		return "", err
	}
	if err := tn.Restore(); err != nil {
		return "", err
	}
	n.met.replacements.Inc()
	n.setHint(home, "")
	return "", nil
}

// routeTarget picks where an un-forwarded ingest for home should go: this
// node if it hosts the home, the hinted host if one is cached, else the
// rendezvous owner over the nodes currently believed alive.
func (n *Node) routeTarget(home string) string {
	if _, ok := n.h.Tenant(home); ok {
		return n.id
	}
	if id, ok := n.hintFor(home); ok {
		return id
	}
	return Owner(home, n.aliveNodes())
}
