package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/wire"
)

// forwardedHeader marks a proxied ingest so it is served authoritatively
// by the receiver — one hop, never a proxy loop.
const forwardedHeader = "X-Dice-Forwarded"

// handler builds the node's mux. Cluster-internal endpoints live under
// /cluster/; the operator-facing /metrics and /tenants are cluster-merged
// versions of the hub's, and everything else falls through to the embedded
// hub's observability mux.
//
//	POST /cluster/heartbeat      peer liveness gossip
//	POST /cluster/ingest/{home}  binary batch (DWB1); 200 = durably applied
//	POST /cluster/adopt          receive a migrated tenant's state envelope
//	GET  /cluster/hosted/{home}  "true"/"false": does this node host home
//	GET  /cluster/metrics        node-local exposition (merge fodder)
//	GET  /cluster/tenants        node-local tenant rows (merge fodder)
//	GET  /metrics                cluster-merged exposition, node="<id>" labels
//	GET  /tenants                cluster-merged tenant rows with node IDs
func (n *Node) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/heartbeat", n.handleHeartbeat)
	mux.HandleFunc("POST /cluster/ingest/{home}", n.handleIngest)
	mux.HandleFunc("POST /cluster/adopt", n.handleAdopt)
	mux.HandleFunc("GET /cluster/hosted/{home}", func(w http.ResponseWriter, r *http.Request) {
		home := r.PathValue("home")
		_, ok := n.h.Tenant(home)
		// A home mid-export claims "hosted": the prober must not adopt it
		// while the envelope is in flight to the real adopter.
		fmt.Fprintf(w, "%v", ok || n.isExporting(home)) //nolint:errcheck // client went away
	})
	mux.HandleFunc("GET /cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.h.WriteMetrics(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("GET /cluster/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, n.localTenantRows())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.writeClusterMetrics(r.Context(), w)
	})
	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, n.clusterTenantRows(r.Context()))
	})
	mux.Handle("/", n.h.HTTPHandler())
	return mux
}

func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var msg heartbeatMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&msg); err != nil {
		http.Error(w, "bad heartbeat", http.StatusBadRequest)
		return
	}
	if p, ok := n.peers[msg.From]; ok {
		n.met.heartbeats.Inc()
		n.markSeen(p)
	}
	writeJSON(w, heartbeatMsg{From: n.id})
}

// handleIngest is the cluster's ack discipline in one handler: a 200 means
// the batch was applied and a barrier confirmed it — after the response,
// the events survive any single-node death. Anything retryable (shed,
// mid-migration, a stale route) maps to a status the client's retry loop
// recognizes; the client re-sending an unacked batch is the at-least-once
// edge every distributed ingest has, and the drills sequence kills between
// acked batches to keep the bit-identity oracle exact.
func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	home := r.PathValue("home")
	payload, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, "read body", http.StatusBadRequest)
		return
	}
	if n.isExporting(home) {
		http.Error(w, "home mid-handoff", http.StatusConflict)
		return
	}
	if _, ok := n.h.Tenant(home); ok {
		n.applyIngest(w, home, payload)
		return
	}
	if r.Header.Get(forwardedHeader) != "" {
		// One hop only: we were chosen as the host. Adopt if nobody else
		// has it; never proxy a proxied request.
		hostedBy, err := n.ensureLocal(r.Context(), home)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if hostedBy != "" {
			http.Error(w, "hosted by "+hostedBy, http.StatusNotFound)
			return
		}
		n.applyIngest(w, home, payload)
		return
	}
	target := n.routeTarget(home)
	if target == n.id {
		hostedBy, err := n.ensureLocal(r.Context(), home)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if hostedBy != "" {
			n.proxyIngest(r.Context(), w, hostedBy, home, payload)
			return
		}
		n.applyIngest(w, home, payload)
		return
	}
	n.proxyIngest(r.Context(), w, target, home, payload)
}

// applyIngest decodes and applies one binary batch locally, draining the
// home before acking so the 200 asserts durability, not just enqueueing.
func (n *Node) applyIngest(w http.ResponseWriter, home string, payload []byte) {
	scratch := wire.GetEvents()
	defer wire.PutEvents(scratch)
	b, err := wire.DecodeBatch(payload, *scratch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	*scratch = b.Events
	switch b.Kind {
	case wire.KindReport:
		err = n.h.IngestBatch(home, b.Events)
	case wire.KindAdvance:
		err = n.h.Advance(home, b.At)
	default:
		http.Error(w, "unknown batch kind", http.StatusBadRequest)
		return
	}
	if err == nil {
		err = n.h.Drain(home)
	}
	switch {
	case err == nil:
		w.WriteHeader(http.StatusOK)
	case errors.Is(err, hub.ErrMigrating), errors.Is(err, hub.ErrUnknownHome):
		// Mid-migration (or it just moved): nothing was applied; the
		// client's retry re-routes to the new owner.
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, hub.ErrShed), errors.Is(err, hub.ErrDeadline), errors.Is(err, hub.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// proxyIngest forwards a batch to the node believed to host home, with the
// standard retry envelope. A 404 carries the receiver's best knowledge
// ("hosted by <id>") and redirects the proxy up to twice before giving up;
// a bare 404 drops the stale hint and falls back to adopting locally if
// placement says we own it.
func (n *Node) proxyIngest(ctx context.Context, w http.ResponseWriter, target, home string, payload []byte) {
	for hop := 0; hop < 3; hop++ {
		p, ok := n.peers[target]
		if !ok {
			http.Error(w, "unknown route target "+target, http.StatusServiceUnavailable)
			return
		}
		n.met.proxied.Inc()
		_, err := n.callForwarded(ctx, "http://"+p.addr+"/cluster/ingest/"+home, payload)
		if err == nil {
			n.setHint(home, target)
			w.WriteHeader(http.StatusOK)
			return
		}
		var se *errStatus
		if !errors.As(err, &se) || se.code != http.StatusNotFound {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		n.setHint(home, "")
		if host, ok := strings.CutPrefix(strings.TrimSpace(se.body), "hosted by "); ok && host != n.id && host != target {
			target = host
			continue
		}
		if Owner(home, n.aliveNodes()) == n.id {
			hostedBy, lerr := n.ensureLocal(ctx, home)
			if lerr == nil && hostedBy == "" {
				n.applyIngest(w, home, payload)
				return
			}
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, "route for "+home+" did not converge", http.StatusServiceUnavailable)
}

// callForwarded is call() with the one-hop marker set.
func (n *Node) callForwarded(ctx context.Context, url string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = func() error {
			cctx, cancel := context.WithTimeout(ctx, n.o.callTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(cctx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set(forwardedHeader, "1")
			resp, err := n.hc.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // best-effort error text
			if resp.StatusCode < 200 || resp.StatusCode > 299 {
				return &errStatus{code: resp.StatusCode, body: string(data)}
			}
			return nil
		}()
		if lastErr == nil {
			return nil, nil
		}
		if attempt >= n.o.retries || !retryable(lastErr) || ctx.Err() != nil {
			return nil, lastErr
		}
		n.met.retries.Inc()
		if err := sleepBackoff(ctx, n.o.retryBackoff, attempt); err != nil {
			return nil, lastErr
		}
	}
}

func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	var exp hub.ExportedTenant
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&exp); err != nil {
		http.Error(w, "bad export envelope", http.StatusBadRequest)
		return
	}
	if n.o.resolve == nil {
		http.Error(w, "no catalog resolver", http.StatusNotImplemented)
		return
	}
	cctx, gwOpts, err := n.o.resolve(exp.Home)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if _, err := n.h.Adopt(&exp, cctx, gwOpts...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n.setHint(exp.Home, "")
	w.WriteHeader(http.StatusOK)
}

// TenantRow is one home's placement and counters in the merged /tenants.
type TenantRow struct {
	Node  string        `json:"node"`
	Home  string        `json:"home"`
	Stats gateway.Stats `json:"stats"`
}

func (n *Node) localTenantRows() []TenantRow {
	out := []TenantRow{}
	for _, home := range n.h.Homes() {
		if t, ok := n.h.Tenant(home); ok {
			out = append(out, TenantRow{Node: n.id, Home: home, Stats: t.Stats()})
		}
	}
	return out
}

// clusterTenantRows merges every reachable node's tenant rows; unreachable
// peers are skipped (their homes show up once fail-over re-places them).
func (n *Node) clusterTenantRows(ctx context.Context) []TenantRow {
	rows := n.localTenantRows()
	for _, p := range n.alivePeerList() {
		body, err := n.doOnce(ctx, http.MethodGet, "http://"+p.addr+"/cluster/tenants", nil)
		if err != nil {
			continue
		}
		var peerRows []TenantRow
		if json.Unmarshal(body, &peerRows) != nil {
			continue
		}
		for i := range peerRows {
			peerRows[i].Node = p.id
		}
		rows = append(rows, peerRows...)
	}
	return rows
}

// writeClusterMetrics renders the cluster-merged exposition: this node's
// merged hub text plus every reachable peer's, each sample line stamped
// with a node label. Peer comment lines are dropped (the local exposition
// already carries HELP/TYPE for the shared series).
func (n *Node) writeClusterMetrics(ctx context.Context, w io.Writer) {
	var buf bytes.Buffer
	n.h.WriteMetrics(&buf) //nolint:errcheck // bytes.Buffer never fails
	relabelExposition(w, buf.Bytes(), n.id, true)
	for _, p := range n.alivePeerList() {
		body, err := n.doOnce(ctx, http.MethodGet, "http://"+p.addr+"/cluster/metrics", nil)
		if err != nil {
			continue
		}
		relabelExposition(w, body, p.id, false)
	}
}

// relabelExposition injects node="<id>" into every sample line of a
// text-format exposition. Comment lines pass through only when keepHelp.
func relabelExposition(w io.Writer, text []byte, nodeID string, keepHelp bool) {
	for _, line := range strings.Split(string(text), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if keepHelp {
				fmt.Fprintln(w, line) //nolint:errcheck // client went away
			}
			continue
		}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			fmt.Fprintf(w, "%s{node=%q,%s\n", line[:i], nodeID, line[i+1:]) //nolint:errcheck // client went away
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			fmt.Fprintf(w, "%s{node=%q}%s\n", line[:i], nodeID, line[i:]) //nolint:errcheck // client went away
		} else {
			fmt.Fprintln(w, line) //nolint:errcheck // client went away
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
