package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// maxCallBackoff caps the exponential inter-node retry delay.
const maxCallBackoff = 2 * time.Second

// errStatus carries a non-2xx peer response through the retry loop.
type errStatus struct {
	code int
	body string
}

func (e *errStatus) Error() string {
	return fmt.Sprintf("cluster: peer status %d: %s", e.code, e.body)
}

// retryable reports whether a call failure is worth another attempt:
// transport errors (the link, not the request), 5xx (peer overloaded or
// mid-crash), and 409 (tenant mid-migration — the next attempt will land
// on the new owner). 4xx other than 409 means the request itself is wrong
// and retrying cannot fix it.
func retryable(err error) bool {
	var se *errStatus
	if errors.As(err, &se) {
		return se.code == http.StatusConflict || se.code >= 500
	}
	return true
}

// call issues one inter-node request with bounded retries and full-jitter
// exponential backoff. Every retry is counted on the node's
// dice_cluster_retries_total; the caller sees only the final outcome.
// A nil-error return always carries a 2xx response body.
func (n *Node) call(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := n.doOnce(ctx, method, url, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if attempt >= n.o.retries || !retryable(err) || ctx.Err() != nil {
			return nil, lastErr
		}
		n.met.retries.Inc()
		if err := sleepBackoff(ctx, n.o.retryBackoff, attempt); err != nil {
			return nil, lastErr
		}
	}
}

// sleepBackoff waits out one retry delay: exponential from base by attempt,
// capped at maxCallBackoff, with full jitter on the top half so a herd of
// callers retrying the same struggling peer does not re-synchronize into
// periodic thundering. Returns early (with ctx.Err) on cancellation.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) error {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	delay := base << attempt
	if delay > maxCallBackoff || delay <= 0 {
		delay = maxCallBackoff
	}
	delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
	select {
	case <-time.After(delay):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doOnce is a single attempt of call.
func (n *Node) doOnce(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, n.o.callTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := string(data)
		if len(msg) > 256 {
			msg = msg[:256]
		}
		return nil, &errStatus{code: resp.StatusCode, body: msg}
	}
	return data, nil
}
