package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/hub"
)

// heartbeatMsg is the gossip payload: just identity — liveness is the
// signal, the timestamp is taken by the receiver.
type heartbeatMsg struct {
	From string `json:"from"`
}

// heartbeatLoop pings every peer each interval. Each ping is a single
// attempt (the next tick is the retry), and a successful response is proof
// of life for the peer just as an inbound heartbeat would be — so a
// one-way partition degrades to suspicion on both sides, not a split where
// only one side notices.
func (n *Node) heartbeatLoop() {
	defer n.loops.Done()
	body, _ := json.Marshal(heartbeatMsg{From: n.id}) //nolint:errcheck // fixed struct
	tick := time.NewTicker(n.o.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		for _, p := range n.alivePeerListAll() {
			go func(p *peer) {
				ctx, cancel := context.WithTimeout(context.Background(), n.o.callTimeout)
				defer cancel()
				if _, err := n.doOnce(ctx, http.MethodPost, "http://"+p.addr+"/cluster/heartbeat", body); err == nil {
					n.markSeen(p)
				}
			}(p)
		}
	}
}

// alivePeerListAll returns every peer, dead ones included — heartbeats
// keep probing the dead so a restarted node is re-admitted.
func (n *Node) alivePeerListAll() []*peer {
	out := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		out = append(out, p)
	}
	return out
}

// markSeen records proof of life. A peer returning from the dead rejoins
// the placement population immediately; the homes it used to own stay
// wherever they are hosted now (hosting wins over placement — see
// ensureLocal), so a rejoin never yanks live tenants around.
func (n *Node) markSeen(p *peer) {
	p.lastSeen.Store(time.Now().UnixNano())
	if p.state.Swap(peerAlive) == peerDead {
		n.refreshPeerGauges()
	}
}

// monitorLoop is the failure detector: a peer silent past suspectAfter is
// suspect, past deadAfter dead. Death is the expensive transition — it
// triggers a re-placement sweep adopting every catalog home this node now
// owns — so it sits behind the longer timeout, while suspicion is cheap
// and only shows up on the gauge (and in drills, as an early warning).
func (n *Node) monitorLoop() {
	defer n.loops.Done()
	period := n.o.heartbeat / 2
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		for _, p := range n.peers {
			silent := time.Duration(now - p.lastSeen.Load())
			switch {
			case silent > n.o.deadAfter:
				if p.state.Swap(peerDead) != peerDead {
					n.refreshPeerGauges()
					n.failover(p)
				}
			case silent > n.o.suspectAfter:
				if p.state.CompareAndSwap(peerAlive, peerSuspect) {
					n.refreshPeerGauges()
				}
			}
		}
	}
}

func (n *Node) refreshPeerGauges() {
	var alive, suspect int64
	for _, p := range n.peers {
		switch p.state.Load() {
		case peerAlive:
			alive++
		case peerSuspect:
			suspect++
		}
	}
	n.met.alivePeers.Set(alive)
	n.met.suspectPeers.Set(suspect)
}

// failover re-places a dead peer's share of the catalog. Rendezvous
// hashing guarantees the only homes whose owner changed are the dead
// node's, so the sweep adopts exactly: catalog homes that (a) this node
// now owns, (b) are not already hosted here, and (c) no live peer hosts.
// Each adoption is a cold restore from the shared checkpoint + WAL state
// the dead node left behind — the same recovery path a process restart
// takes, proven bit-identical by the recovery oracle.
func (n *Node) failover(dead *peer) {
	n.met.failovers.Inc()
	alive := n.aliveNodes()
	ctx, cancel := context.WithTimeout(context.Background(), n.o.callTimeout*time.Duration(n.o.retries+1))
	defer cancel()
	for _, home := range n.o.catalog {
		if Owner(home, alive) != n.id {
			continue
		}
		if _, err := n.ensureLocal(ctx, home); err != nil {
			// The home stays down until the next ingest retries the
			// adoption; counting it as an ingest error keeps it visible.
			continue
		}
		if err := n.h.Drain(home); err != nil && err != hub.ErrClosed {
			continue
		}
	}
	n.mu.Lock()
	for home, id := range n.hints {
		if id == dead.id {
			delete(n.hints, home)
		}
	}
	n.mu.Unlock()
}
