package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/simhome"
	"repro/internal/wire"
)

// Training is shared by the whole package: the trained context is
// immutable, and it is the expensive part of every drill.
var (
	trainOnce sync.Once
	trainedH  *simhome.Home
	trainedC  *core.Context
	trainErr  error
)

func trained(t testing.TB) (*simhome.Home, *core.Context) {
	t.Helper()
	trainOnce.Do(func() {
		spec := simhome.SpecDHouseA()
		spec.Name = "cluster-test"
		spec.Hours = 5 * 24
		h, err := simhome.New(spec, 21)
		if err != nil {
			trainErr = err
			return
		}
		trainW := 3 * 24 * 60
		tr := core.NewTrainer(h.Layout(), time.Minute)
		for i := 0; i < trainW; i++ {
			if err := tr.Calibrate(h.Window(i)); err != nil {
				trainErr = err
				return
			}
		}
		if err := tr.FinishCalibration(); err != nil {
			trainErr = err
			return
		}
		for i := 0; i < trainW; i++ {
			if err := tr.Learn(h.Window(i)); err != nil {
				trainErr = err
				return
			}
		}
		trainedH = h
		trainedC, trainErr = tr.Context()
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainedH, trainedC
}

// homeStream is one home's replay: a 2-hour slice at a per-home offset,
// rebased to stream time zero; odd homes carry a spurious-bulb actuator
// fault so the drill produces real alerts with Explain traces.
func homeStream(t testing.TB, h *simhome.Home, i int) []event.Event {
	t.Helper()
	src := h
	start := 3*24*60 + i*60
	if i%2 == 1 {
		bulb, ok := h.Registry().Lookup("bulb-kitchen")
		if !ok {
			t.Fatal("no kitchen bulb")
		}
		src = h.WithActuatorFaults(simhome.ActuatorFaults{
			Spurious:   map[device.ID]bool{bulb: true},
			Seed:       int64(100 + i),
			FromMinute: start,
		})
	}
	evts := src.Events(start, start+2*60)
	out := make([]event.Event, 0, len(evts))
	for _, e := range evts {
		e.At -= time.Duration(start) * time.Minute
		out = append(out, e)
	}
	return out
}

const streamEnd = 2 * time.Hour

var tenantGwOpts = []gateway.Option{
	gateway.WithConfig(core.Config{}),
	gateway.WithAlertBuffer(4096),
}

// soloRun replays one stream through a standalone gateway — the reference
// every cluster path must reproduce bit-identically per home.
func soloRun(t testing.TB, cctx *core.Context, evts []event.Event) (gateway.Stats, []gateway.Alert) {
	t.Helper()
	gw, err := gateway.New(cctx, tenantGwOpts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evts {
		if err := gw.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.AdvanceTo(streamEnd); err != nil {
		t.Fatal(err)
	}
	st := gw.Stats()
	if st.AlertsDropped != 0 {
		t.Fatalf("solo run dropped %d alerts; reference is unusable", st.AlertsDropped)
	}
	var alerts []gateway.Alert
	for {
		select {
		case a := <-gw.Alerts():
			alerts = append(alerts, a)
		default:
			return st, alerts
		}
	}
}

func TestOwnerDeterministicAndMinimalReshuffle(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	homes := make([]string, 64)
	for i := range homes {
		homes[i] = fmt.Sprintf("home-%02d", i)
	}
	for _, h := range homes {
		if got, want := Owner(h, []string{"c", "a", "b"}), Owner(h, nodes); got != want {
			t.Fatalf("Owner(%q) depends on node order: %q vs %q", h, got, want)
		}
	}
	place := Placement(homes, nodes)
	total := 0
	for _, n := range nodes {
		if len(place[n]) == 0 {
			t.Errorf("node %q got no homes out of %d — rendezvous spread is broken", n, len(homes))
		}
		total += len(place[n])
	}
	if total != len(homes) {
		t.Fatalf("placement covers %d of %d homes", total, len(homes))
	}
	// Removing one node must re-place only that node's homes.
	survivors := []string{"a", "c"}
	for _, h := range homes {
		before, after := Owner(h, nodes), Owner(h, survivors)
		if before != "b" && before != after {
			t.Errorf("home %q moved %q→%q although %q did not die", h, before, after, before)
		}
		if before == "b" && (after != "a" && after != "c") {
			t.Errorf("home %q was orphaned: owner %q", h, after)
		}
	}
	if Owner("home-00", nil) != "" {
		t.Error("Owner over no nodes should be empty")
	}
}

func TestRelabelExposition(t *testing.T) {
	in := []byte("# HELP x things\nx{home=\"h1\"} 3\ny 7\n")
	var buf bytes.Buffer
	relabelExposition(&buf, in, "n1", false)
	want := "x{node=\"n1\",home=\"h1\"} 3\ny{node=\"n1\"} 7\n"
	if buf.String() != want {
		t.Fatalf("relabel:\n got %q\nwant %q", buf.String(), want)
	}
}

// testCluster wires n in-process nodes over loopback HTTP with a shared
// state tree and a full-mesh static peer table.
type testCluster struct {
	nodes []*Node
}

func newTestCluster(t testing.TB, ids []string, cctx *core.Context, catalog []string, opts func(id string) []Option) *testCluster {
	t.Helper()
	dir := t.TempDir()
	resolver := func(home string) (*core.Context, []gateway.Option, error) {
		return cctx, tenantGwOpts, nil
	}
	// Two-phase start: listeners first (so every peer table can carry real
	// addresses), then Start.
	nodes := make([]*Node, len(ids))
	addrs := make(map[string]string, len(ids))
	for i, id := range ids {
		base := []Option{
			WithCatalog(catalog, resolver),
			WithHubOptions(
				hub.WithShards(2),
				hub.WithCheckpointDir(dir),
				hub.WithWALDir(dir),
				hub.WithAlertBuffer(8192),
			),
			WithHeartbeat(100*time.Millisecond, 400*time.Millisecond, 2*time.Second),
			WithRetry(4, 25*time.Millisecond),
			WithCallTimeout(3 * time.Second),
			WithListen("127.0.0.1:0"),
		}
		if opts != nil {
			base = append(base, opts(id)...)
		}
		// Peers are patched in below once all addresses exist; New copies
		// the map, so build nodes first with an empty table.
		n, err := New(id, base...)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for i, n := range nodes {
		addrs[ids[i]] = n.Addr()
	}
	// Loops have not started yet, so the peer tables can be wired with the
	// real bound addresses before any goroutine reads them.
	for i, n := range nodes {
		for j, pid := range ids {
			if i == j {
				continue
			}
			if err := n.SetPeer(pid, addrs[pid]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range nodes {
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close() //nolint:errcheck // drill teardown
		}
	})
	return &testCluster{nodes: nodes}
}

func (tc *testCluster) node(id string) *Node {
	for _, n := range tc.nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// hostOf finds the unique live node hosting home.
func (tc *testCluster) hostOf(t testing.TB, home string) *Node {
	t.Helper()
	var host *Node
	for _, n := range tc.nodes {
		if n.closed.Load() {
			continue
		}
		if _, ok := n.h.Tenant(home); ok {
			if host != nil {
				t.Fatalf("home %q hosted on both %q and %q", home, host.id, n.id)
			}
			host = n
		}
	}
	if host == nil {
		t.Fatalf("home %q hosted nowhere", home)
	}
	return host
}

// sendStream ships evts for home through c in batches, gating each send so
// an orchestrator can freeze the cluster between acked batches.
func sendStream(t testing.TB, c *Client, gate *sync.RWMutex, home string, evts []event.Event, batch int) {
	t.Helper()
	ctx := context.Background()
	var buf []byte
	for lo := 0; lo < len(evts); lo += batch {
		hi := lo + batch
		if hi > len(evts) {
			hi = len(evts)
		}
		buf = wire.AppendReport(buf[:0], evts[lo:hi])
		gate.RLock()
		err := c.Send(ctx, home, buf)
		gate.RUnlock()
		if err != nil {
			t.Errorf("send %s batch @%d: %v", home, lo, err)
			return
		}
	}
	buf = wire.AppendAdvance(buf[:0], streamEnd)
	gate.RLock()
	err := c.Send(ctx, home, buf)
	gate.RUnlock()
	if err != nil {
		t.Errorf("advance %s: %v", home, err)
	}
}

// alertJSON renders an alert (Explain trace included) for byte comparison.
func alertJSON(t testing.TB, a gateway.Alert) string {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterMigrationBitIdentical hands one live tenant between nodes
// mid-stream and requires every home's final stats and last Explain trace
// to match a solo gateway replay exactly.
func TestClusterMigrationBitIdentical(t *testing.T) {
	h, cctx := trained(t)
	const homes = 4
	catalog := make([]string, homes)
	streams := make(map[string][]event.Event, homes)
	wantStats := make(map[string]gateway.Stats, homes)
	wantAlerts := make(map[string][]gateway.Alert, homes)
	for i := 0; i < homes; i++ {
		home := fmt.Sprintf("home-%02d", i)
		catalog[i] = home
		streams[home] = homeStream(t, h, i)
		wantStats[home], wantAlerts[home] = soloRun(t, cctx, streams[home])
	}

	tc := newTestCluster(t, []string{"a", "b"}, cctx, catalog, nil)
	client := &Client{Base: tc.node("a").Addr(), Retries: 10, Backoff: 25 * time.Millisecond}

	// First half of every stream.
	var gate sync.RWMutex
	halves := make(map[string]int, homes)
	for _, home := range catalog {
		halves[home] = len(streams[home]) / 2
	}
	var wg sync.WaitGroup
	for _, home := range catalog {
		wg.Add(1)
		go func(home string) {
			defer wg.Done()
			evts := streams[home][:halves[home]]
			var buf []byte
			for lo := 0; lo < len(evts); lo += 64 {
				hi := lo + 64
				if hi > len(evts) {
					hi = len(evts)
				}
				buf = wire.AppendReport(buf[:0], evts[lo:hi])
				if err := client.Send(context.Background(), home, buf); err != nil {
					t.Errorf("first half %s: %v", home, err)
					return
				}
			}
		}(home)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Live handoff: move an odd (alert-producing) home to the other node.
	victim := "home-01"
	src := tc.hostOf(t, victim)
	var dst *Node
	for _, n := range tc.nodes {
		if n != src {
			dst = n
		}
	}
	if err := src.Migrate(context.Background(), victim, dst.id); err != nil {
		t.Fatalf("migrate %s %s→%s: %v", victim, src.id, dst.id, err)
	}
	if got := tc.hostOf(t, victim); got != dst {
		t.Fatalf("after migration %s hosted on %q, want %q", victim, got.id, dst.id)
	}
	if src.met.handoffs.Value() != 1 {
		t.Errorf("source handoffs counter = %d, want 1", src.met.handoffs.Value())
	}

	// Second half rides the new placement (the client re-routes on 409s).
	for _, home := range catalog {
		wg.Add(1)
		go func(home string) {
			defer wg.Done()
			sendStream(t, client, &gate, home, streams[home][halves[home]:], 64)
		}(home)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, home := range catalog {
		host := tc.hostOf(t, home)
		if err := host.h.Drain(home); err != nil {
			t.Fatal(err)
		}
		tn, _ := host.h.Tenant(home)
		if got := tn.Stats(); got != wantStats[home] {
			t.Errorf("%s on %s stats diverged:\n cluster: %+v\n solo:    %+v", home, host.id, got, wantStats[home])
		}
		last, ok := tn.LastAlert()
		if len(wantAlerts[home]) == 0 {
			if ok {
				t.Errorf("%s raised an alert solo never did", home)
			}
			continue
		}
		if !ok {
			t.Errorf("%s lost its last alert in the handoff", home)
			continue
		}
		want := wantAlerts[home][len(wantAlerts[home])-1]
		if alertJSON(t, last) != alertJSON(t, want) {
			t.Errorf("%s last alert Explain diverged:\n cluster: %s\n solo:    %s",
				home, alertJSON(t, last), alertJSON(t, want))
		}
	}
	// The migrated tenant's devices must not have gone dark from handoff
	// downtime (liveness rebase on adoption).
	tn, _ := tc.hostOf(t, victim).h.Tenant(victim)
	if st := tn.Stats(); st.DarkDevices != wantStats[victim].DarkDevices {
		t.Errorf("migration downtime changed dark devices: %d vs solo %d", st.DarkDevices, wantStats[victim].DarkDevices)
	}
}
