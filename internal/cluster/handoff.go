package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/hub"
)

// Migrate drains home on this node and hands its live state to target:
// the tenant enters Migrating (new ops bounce with a retryable 409), a
// barrier settles the queue, and the checksummed checkpoint envelope plus
// WAL tail ship to the target, which adopts and verifies the restored
// counters against the donor's before serving. The shipping call gets the
// full retry/backoff treatment; if it still fails, the export re-adopts
// locally from the same envelope, so a failed migration degrades to "the
// home never moved" rather than "the home is gone".
func (n *Node) Migrate(ctx context.Context, home, target string) error {
	if target == n.id {
		return fmt.Errorf("cluster: migrate %q: target is this node", home)
	}
	p, ok := n.peers[target]
	if !ok {
		return fmt.Errorf("cluster: migrate %q: unknown target node %q", home, target)
	}
	if p.state.Load() == peerDead {
		return fmt.Errorf("cluster: migrate %q: target node %q is dead", home, target)
	}
	// The exporting flag covers the dead zone between local eviction and
	// confirmed remote adoption: ingests and hosted-probes for the home
	// answer "mid-handoff, retry" instead of racing an adopter into
	// double-hosting.
	n.setExporting(home, true)
	defer n.setExporting(home, false)
	exp, err := n.h.ExportTenant(home)
	if err != nil {
		return err
	}
	body, err := json.Marshal(exp)
	if err != nil {
		return n.readopt(home, exp, err)
	}
	if _, err := n.call(ctx, http.MethodPost, "http://"+p.addr+"/cluster/adopt", body); err != nil {
		return n.readopt(home, exp, err)
	}
	n.setHint(home, target)
	n.met.handoffs.Inc()
	return nil
}

// readopt rolls a failed handoff back: the tenant was already exported
// (evicted, WAL closed), so the only safe recovery is to adopt the
// envelope ourselves — the same code path the target would have run.
func (n *Node) readopt(home string, exp *hub.ExportedTenant, cause error) error {
	if n.o.resolve == nil {
		return fmt.Errorf("cluster: migrate %q failed with no resolver to re-adopt: %w", home, cause)
	}
	cctx, gwOpts, rerr := n.o.resolve(home)
	if rerr == nil {
		_, rerr = n.h.Adopt(exp, cctx, gwOpts...)
	}
	if rerr != nil {
		return fmt.Errorf("cluster: migrate %q failed (%v) and local re-adopt failed: %w", home, cause, rerr)
	}
	n.setHint(home, "")
	return fmt.Errorf("cluster: migrate %q: target unreachable, re-adopted locally: %w", home, cause)
}
