package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/event"
	"repro/internal/gateway"
	"repro/internal/wire"
)

// TestClusterChaosKillDrill is the acceptance drill: three nodes under
// seeded link chaos ingest six homes while the drill partitions one link,
// slows another, live-migrates a tenant, and SIGKILLs a node mid-stream.
// Every home's final stats and last Explain trace must still equal a solo
// gateway replay, the dead node's homes must be re-adopted by survivors,
// and the merged /metrics must show the fail-over and retry counters.
func TestClusterChaosKillDrill(t *testing.T) {
	h, cctx := trained(t)
	const homes = 6
	catalog := make([]string, homes)
	streams := make(map[string][]event.Event, homes)
	wantStats := make(map[string]gateway.Stats, homes)
	wantAlerts := make(map[string][]gateway.Alert, homes)
	for i := 0; i < homes; i++ {
		home := fmt.Sprintf("home-%02d", i)
		catalog[i] = home
		streams[home] = homeStream(t, h, i)
		wantStats[home], wantAlerts[home] = soloRun(t, cctx, streams[home])
	}

	// Every node gets its own seeded chaos transport on the inter-node
	// links; the drill reshapes topology through them at runtime.
	transports := make(map[string]*chaos.Transport, 3)
	tc := newTestCluster(t, []string{"a", "b", "c"}, cctx, catalog, func(id string) []Option {
		ct := chaos.NewTransport(nil, chaos.Config{Seed: int64(len(id)) + 7, Drop: 0.02})
		transports[id] = ct
		return []Option{WithTransport(ct)}
	})
	// The client rides a dropping link too: every retry it takes shows up
	// in its own resend discipline, never as a duplicate apply (drops are
	// injected before the request reaches the wire).
	clientChaos := chaos.NewTransport(nil, chaos.Config{Seed: 99, Drop: 0.05})
	client := &Client{
		Base:    tc.node("a").Addr(),
		HC:      &http.Client{Transport: clientChaos},
		Retries: 12,
		Backoff: 25 * time.Millisecond,
	}

	// Senders take the gate read-side per batch; the orchestrator's write
	// lock freezes the cluster between acked batches, which is what keeps
	// the SIGKILL exactly-once: no un-acked batch is ever in flight when
	// the node dies.
	var gate sync.RWMutex
	var sent atomic.Int64
	var wg sync.WaitGroup
	progress := func() {
		sent.Add(1)
	}
	for _, home := range catalog {
		wg.Add(1)
		go func(home string) {
			defer wg.Done()
			evts := streams[home]
			var buf []byte
			for lo := 0; lo < len(evts); lo += 64 {
				hi := lo + 64
				if hi > len(evts) {
					hi = len(evts)
				}
				buf = wire.AppendReport(buf[:0], evts[lo:hi])
				gate.RLock()
				err := client.Send(context.Background(), home, buf)
				gate.RUnlock()
				if err != nil {
					t.Errorf("send %s batch @%d: %v", home, lo, err)
					return
				}
				progress()
			}
			buf = wire.AppendAdvance(buf[:0], streamEnd)
			gate.RLock()
			err := client.Send(context.Background(), home, buf)
			gate.RUnlock()
			if err != nil {
				t.Errorf("advance %s: %v", home, err)
			}
		}(home)
	}

	waitSent := func(n int64) {
		deadline := time.Now().Add(30 * time.Second)
		for sent.Load() < n {
			if time.Now().After(deadline) {
				t.Fatalf("drill stalled at %d acked batches waiting for %d", sent.Load(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: partition the a↔b link briefly (long enough for suspicion,
	// far short of a death verdict) and slow a→c. Ingest must ride the
	// retries straight through.
	waitSent(10)
	addrB, addrC := tc.node("b").Addr(), tc.node("c").Addr()
	transports["a"].Partition(addrB, true)
	transports["b"].Partition(tc.node("a").Addr(), true)
	transports["a"].Slow(addrC, 10*time.Millisecond)
	time.Sleep(600 * time.Millisecond)
	transports["a"].Partition(addrB, false)
	transports["b"].Partition(tc.node("a").Addr(), false)
	transports["a"].Slow(addrC, 0)

	// Phase 2: live-migrate a home between the two nodes that will survive,
	// so the drill covers a handoff and a fail-over in the same run (and
	// the handoff counter outlives the kill). Freeze senders so the
	// 409-bounce window stays deterministic for the oracle.
	waitSent(20)
	var migSrc *Node
	victim := ""
	for _, home := range catalog {
		if host := tc.hostOf(t, home); host.id != "c" {
			migSrc, victim = host, home
			break
		}
	}
	if victim == "" {
		t.Fatal("placement put every home on node c; drill cannot cover a survivor handoff")
	}
	migDst := "a"
	if migSrc.id == "a" {
		migDst = "b"
	}
	gate.Lock()
	if err := migSrc.Migrate(context.Background(), victim, migDst); err != nil {
		gate.Unlock()
		t.Fatalf("migrate %s %s→%s: %v", victim, migSrc.id, migDst, err)
	}
	gate.Unlock()

	// Phase 3: SIGKILL node c between acked batches. Survivors must
	// declare it dead and cold-restore its homes from the shared
	// checkpoint + WAL state within the heartbeat/backoff budget.
	waitSent(35)
	gate.Lock()
	tc.node("c").Kill()
	killedAt := time.Now()
	gate.Unlock()

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	recovery := time.Since(killedAt)

	// Every home must end on a survivor, bit-identical to solo.
	for _, home := range catalog {
		host := tc.hostOf(t, home)
		if host.id == "c" {
			t.Fatalf("home %s still on the killed node", home)
		}
		if err := host.h.Drain(home); err != nil {
			t.Fatal(err)
		}
		tn, _ := host.h.Tenant(home)
		if got := tn.Stats(); got != wantStats[home] {
			t.Errorf("%s on %s stats diverged:\n cluster: %+v\n solo:    %+v", home, host.id, got, wantStats[home])
		}
		last, ok := tn.LastAlert()
		if len(wantAlerts[home]) == 0 {
			if ok {
				t.Errorf("%s raised an alert solo never did", home)
			}
			continue
		}
		if !ok {
			t.Errorf("%s lost its last alert across the drill", home)
			continue
		}
		want := wantAlerts[home][len(wantAlerts[home])-1]
		if alertJSON(t, last) != alertJSON(t, want) {
			t.Errorf("%s last alert Explain diverged:\n cluster: %s\n solo:    %s",
				home, alertJSON(t, last), alertJSON(t, want))
		}
	}
	t.Logf("drill: stream completed %v after the kill (detection + re-adoption + replay)", recovery)

	// The drill's scars must be visible on the merged exposition.
	resp, err := http.Get("http://" + tc.node("a").Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, metric := range []string{metricFailovers, metricHandoffs, metricRetries, metricReplacements} {
		total := int64(0)
		for _, n := range tc.nodes {
			if n.id == "c" {
				continue
			}
			switch metric {
			case metricFailovers:
				total += n.met.failovers.Value()
			case metricHandoffs:
				total += n.met.handoffs.Value()
			case metricRetries:
				total += n.met.retries.Value()
			case metricReplacements:
				total += n.met.replacements.Value()
			}
		}
		if total == 0 {
			t.Errorf("%s stayed zero across the whole drill", metric)
		}
		if !strings.Contains(text, metric+"{node=") {
			t.Errorf("merged /metrics is missing %s with a node label", metric)
		}
	}
	if clientChaos.Stats().Dropped == 0 {
		t.Error("client chaos dropped nothing; the drill exercised no client retries")
	}
}
