package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// Client is a minimal cluster ingest client: it talks to any one node
// (which routes or proxies as needed) and retries retryable failures —
// link errors, 503 sheds, 409 mid-migration bounces — with the same
// jittered exponential backoff the nodes use among themselves. A nil-error
// return means some node acked the batch as durably applied.
type Client struct {
	// Base is the host:port of any cluster node.
	Base string
	// HC is the HTTP client; nil uses a default. Drills inject a
	// chaos-wrapped transport here.
	HC *http.Client
	// Retries bounds re-attempts after the first try (default 8 — the
	// client outlives a full migration or fail-over window).
	Retries int
	// Backoff is the base retry delay (default 50ms).
	Backoff time.Duration
}

func (c *Client) hc() *http.Client {
	if c.HC != nil {
		return c.HC
	}
	return http.DefaultClient
}

// Send posts one binary batch (wire.AppendReport or wire.AppendAdvance
// bytes) for home and retries until a node acks it durably applied.
func (c *Client) Send(ctx context.Context, home string, payload []byte) error {
	retries := c.Retries
	if retries <= 0 {
		retries = 8
	}
	url := "http://" + c.Base + "/cluster/ingest/" + home
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.post(ctx, url, payload)
		if lastErr == nil {
			return nil
		}
		if attempt >= retries || !retryable(lastErr) || ctx.Err() != nil {
			return lastErr
		}
		if err := sleepBackoff(ctx, c.Backoff, attempt); err != nil {
			return lastErr
		}
	}
}

func (c *Client) post(ctx context.Context, url string, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //nolint:errcheck // best-effort error text
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &errStatus{code: resp.StatusCode, body: string(data)}
	}
	return nil
}
