package event

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/device"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

func TestLessTotalOrder(t *testing.T) {
	a := Event{At: ms(1), Device: 0, Value: 0}
	b := Event{At: ms(2), Device: 0, Value: 0}
	c := Event{At: ms(1), Device: 1, Value: 0}
	d := Event{At: ms(1), Device: 0, Value: 5}
	if !Less(a, b) || Less(b, a) {
		t.Error("time ordering broken")
	}
	if !Less(a, c) || Less(c, a) {
		t.Error("device tiebreak broken")
	}
	if !Less(a, d) || Less(d, a) {
		t.Error("value tiebreak broken")
	}
	if Less(a, a) {
		t.Error("Less should be irreflexive")
	}
}

func TestSortAndIsSorted(t *testing.T) {
	evts := []Event{
		{At: ms(5), Device: 1},
		{At: ms(1), Device: 2},
		{At: ms(3), Device: 0},
	}
	if IsSorted(evts) {
		t.Error("unsorted slice reported sorted")
	}
	Sort(evts)
	if !IsSorted(evts) {
		t.Error("Sort did not sort")
	}
	if evts[0].At != ms(1) || evts[2].At != ms(5) {
		t.Errorf("bad order: %v", evts)
	}
}

func TestMerge(t *testing.T) {
	a := []Event{{At: ms(1)}, {At: ms(4)}, {At: ms(9)}}
	b := []Event{{At: ms(2)}, {At: ms(4), Device: 1}, {At: ms(10)}}
	out := Merge(a, b)
	if len(out) != 6 {
		t.Fatalf("merged length = %d, want 6", len(out))
	}
	if !IsSorted(out) {
		t.Errorf("merge output unsorted: %v", out)
	}
}

func TestMergeEmpty(t *testing.T) {
	a := []Event{{At: ms(1)}}
	if got := Merge(a, nil); len(got) != 1 {
		t.Errorf("Merge(a, nil) = %v", got)
	}
	if got := Merge(nil, a); len(got) != 1 {
		t.Errorf("Merge(nil, a) = %v", got)
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Errorf("Merge(nil, nil) = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	evts := []Event{
		{At: ms(0), Device: 0, Value: 1},
		{At: ms(1500), Device: 3, Value: -2.25},
		{At: ms(60000), Device: 7, Value: 21.375},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, evts); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(evts) {
		t.Fatalf("round trip length %d, want %d", len(got), len(evts))
	}
	for i := range evts {
		if got[i] != evts[i] {
			t.Errorf("event %d: got %v, want %v", i, got[i], evts[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"wrong field count", "millis,device,value\n1,2\n"},
		{"bad millis", "x,1,2\n"},
		{"bad device", "1,x,2\n"},
		{"bad value", "1,2,x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadCSV(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("millis,device,value\n\n1,2,3\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("got %d events, want 1", len(got))
	}
}

func TestSlice(t *testing.T) {
	evts := []Event{
		{At: ms(0)}, {At: ms(10)}, {At: ms(20)}, {At: ms(30)},
	}
	got := Slice(evts, ms(10), ms(30))
	if len(got) != 2 || got[0].At != ms(10) || got[1].At != ms(20) {
		t.Errorf("Slice = %v", got)
	}
	if got := Slice(evts, ms(100), ms(200)); len(got) != 0 {
		t.Errorf("out-of-range Slice = %v", got)
	}
	if got := Slice(evts, ms(0), ms(0)); len(got) != 0 {
		t.Errorf("empty-range Slice = %v", got)
	}
}

// Property: Merge of two sorted slices is sorted and preserves multiset size.
func TestMergeProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		a := make([]Event, len(aRaw))
		for i, v := range aRaw {
			a[i] = Event{At: ms(int64(v)), Device: device.ID(v % 5)}
		}
		b := make([]Event, len(bRaw))
		for i, v := range bRaw {
			b[i] = Event{At: ms(int64(v)), Device: device.ID(v % 7)}
		}
		Sort(a)
		Sort(b)
		out := Merge(a, b)
		return len(out) == len(a)+len(b) && IsSorted(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip is the identity on arbitrary events.
func TestCSVProperty(t *testing.T) {
	f := func(raw []struct {
		T uint32
		D uint8
		V int32
	}) bool {
		evts := make([]Event, len(raw))
		for i, r := range raw {
			evts[i] = Event{At: ms(int64(r.T)), Device: device.ID(r.D), Value: float64(r.V) / 8}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, evts); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(evts) {
			return false
		}
		for i := range evts {
			if got[i] != evts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSort10k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	base := make([]Event, 10000)
	for i := range base {
		base[i] = Event{At: ms(rng.Int63n(1 << 30)), Device: device.ID(rng.Intn(100))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmp := append([]Event(nil), base...)
		Sort(tmp)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	evts := []Event{
		{At: 0, Device: 0, Value: 1},
		{At: 90 * time.Second, Device: 111, Value: -3.25},
		{At: time.Hour, Device: 7, Value: 1e-9},
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, evts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evts) {
		t.Fatalf("length %d, want %d", len(got), len(evts))
	}
	for i := range evts {
		if got[i] != evts[i] {
			t.Errorf("event %d: %v != %v", i, got[i], evts[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a dice file")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated records.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []Event{{At: time.Second}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Error("truncated record accepted")
	}
	// Implausible count header.
	huge := append([]byte("DICEEVT1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Error("implausible count accepted")
	}
}

// Property: binary round trip is the identity (bit-exact values included).
func TestBinaryProperty(t *testing.T) {
	f := func(raw []struct {
		T uint32
		D uint8
		V float64
	}) bool {
		evts := make([]Event, len(raw))
		for i, r := range raw {
			evts[i] = Event{At: ms(int64(r.T)), Device: device.ID(r.D), Value: r.V}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, evts); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != len(evts) {
			return false
		}
		for i := range evts {
			same := got[i].At == evts[i].At && got[i].Device == evts[i].Device
			if !same {
				return false
			}
			// NaN != NaN, so compare bit patterns.
			if math.Float64bits(got[i].Value) != math.Float64bits(evts[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
