package event

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/device"
)

// Binary codec: a compact fixed-record format for large recordings
// (hh102's full run is ~40M events; CSV triples the size and the parse
// cost). Layout: an 8-byte header ("DICEEVT1"), a uint64 record count,
// then per event 8-byte little-endian nanosecond offset, 4-byte device ID,
// and 8-byte float64 value.

var binaryMagic = [8]byte{'D', 'I', 'C', 'E', 'E', 'V', 'T', '1'}

const binaryRecordSize = 8 + 4 + 8

// WriteBinary writes events in the binary format.
func WriteBinary(w io.Writer, evts []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("event: write magic: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(evts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("event: write count: %w", err)
	}
	var rec [binaryRecordSize]byte
	for _, e := range evts {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.At))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(int32(e.Device)))
		binary.LittleEndian.PutUint64(rec[12:20], math.Float64bits(e.Value))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("event: write record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("event: flush: %w", err)
	}
	return nil
}

// ReadBinary parses events written by WriteBinary.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("event: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("event: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("event: read count: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxEvents = 1 << 32 // refuse absurd headers rather than OOM
	if n > maxEvents {
		return nil, fmt.Errorf("event: implausible record count %d", n)
	}
	// Cap the preallocation: the header is untrusted input, and a claimed
	// count only costs real memory once the records actually arrive.
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]Event, 0, capHint)
	var rec [binaryRecordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("event: record %d: %w", i, err)
		}
		out = append(out, Event{
			At:     time.Duration(binary.LittleEndian.Uint64(rec[0:8])),
			Device: device.ID(int32(binary.LittleEndian.Uint32(rec[8:12]))),
			Value:  math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20])),
		})
	}
	return out, nil
}
