// Package event defines the timestamped device readings that flow through
// the system: binary sensor activations, numeric sensor samples, and
// actuator state changes. Events are ordered by a time offset from the start
// of the recording rather than wall-clock time, which keeps datasets
// replayable and experiments deterministic.
package event

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/device"
)

// Event is one device reading.
//
// Interpretation of Value by device kind:
//   - Binary sensor: an activation; Value is 1.
//   - Numeric sensor: the sampled reading.
//   - Actuator: the new state (1 = on/active, 0 = off).
type Event struct {
	// At is the offset from the start of the recording.
	At time.Duration
	// Device is the reporting device's ID within the dataset registry.
	Device device.ID
	// Value is the reading (see interpretation above).
	Value float64
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%s dev=%d v=%g", e.At, int(e.Device), e.Value)
}

// Less orders events by time, breaking ties by device ID then value, giving
// a total deterministic order.
func Less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Device != b.Device {
		return a.Device < b.Device
	}
	return a.Value < b.Value
}

// Sort sorts events in place into the canonical order.
func Sort(evts []Event) {
	sort.Slice(evts, func(i, j int) bool { return Less(evts[i], evts[j]) })
}

// IsSorted reports whether evts is in canonical order.
func IsSorted(evts []Event) bool {
	return sort.SliceIsSorted(evts, func(i, j int) bool { return Less(evts[i], evts[j]) })
}

// Merge merges two already-sorted event slices into one sorted slice.
func Merge(a, b []Event) []Event {
	out := make([]Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if Less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// WriteCSV writes events as "millis,device,value" lines with a header.
// Device IDs are written numerically; the dataset registry is persisted
// separately.
func WriteCSV(w io.Writer, evts []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("millis,device,value\n"); err != nil {
		return fmt.Errorf("event: write header: %w", err)
	}
	for _, e := range evts {
		line := strconv.FormatInt(e.At.Milliseconds(), 10) + "," +
			strconv.Itoa(int(e.Device)) + "," +
			strconv.FormatFloat(e.Value, 'g', -1, 64) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return fmt.Errorf("event: write row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("event: flush: %w", err)
	}
	return nil
}

// ReadCSV parses events written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var evts []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "millis") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("event: line %d: want 3 fields, got %d", lineNo, len(parts))
		}
		ms, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("event: line %d: bad millis: %w", lineNo, err)
		}
		dev, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("event: line %d: bad device: %w", lineNo, err)
		}
		val, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("event: line %d: bad value: %w", lineNo, err)
		}
		evts = append(evts, Event{
			At:     time.Duration(ms) * time.Millisecond,
			Device: device.ID(dev),
			Value:  val,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("event: scan: %w", err)
	}
	return evts, nil
}

// Slice returns the sub-slice of sorted events with At in [from, to).
// It uses binary search and shares the backing array.
func Slice(evts []Event, from, to time.Duration) []Event {
	lo := sort.Search(len(evts), func(i int) bool { return evts[i].At >= from })
	hi := sort.Search(len(evts), func(i int) bool { return evts[i].At >= to })
	return evts[lo:hi]
}
