package baseline

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/window"
)

// ARPredict is the time-series-forecasting baseline (Sharma et al., Fang &
// Dobson): an AR(p) model per numeric sensor predicts the next window mean
// from the recent history; a sensor is flagged after `persistence`
// consecutive windows whose residual exceeds k standard deviations of the
// training residual.
type ARPredict struct {
	// Order is the AR order (default 2).
	Order int
	// K is the residual multiplier (default 8).
	K float64
	// Persistence is the consecutive-violation requirement (default 3).
	Persistence int

	layout  *window.Layout
	coeffs  [][]float64
	mean    []float64
	resSD   []float64
	history [][]float64
	streak  []int
}

// Name implements Detector.
func (a *ARPredict) Name() string { return "ar-predict" }

// Train implements Detector.
func (a *ARPredict) Train(layout *window.Layout, windows []*window.Observation) error {
	if a.Order <= 0 {
		a.Order = 2
	}
	if a.K <= 0 {
		a.K = 8
	}
	if a.Persistence <= 0 {
		a.Persistence = 3
	}
	a.layout = layout
	n := layout.NumNumeric()
	series := make([][]float64, n)
	for _, o := range windows {
		if len(o.Numeric) != n {
			return fmt.Errorf("baseline: window shape mismatch")
		}
		for slot := 0; slot < n; slot++ {
			if v, ok := windowMean(o.Numeric[slot]); ok {
				series[slot] = append(series[slot], v)
			}
		}
	}
	a.coeffs = make([][]float64, n)
	a.mean = make([]float64, n)
	a.resSD = make([]float64, n)
	for slot := 0; slot < n; slot++ {
		xs := series[slot]
		a.mean[slot] = stats.Mean(xs)
		coeffs, _, err := stats.FitAR(xs, a.Order)
		if err != nil {
			// Too little data: fall back to a mean model.
			coeffs = make([]float64, a.Order)
		}
		a.coeffs[slot] = coeffs
		// Training residual scale.
		var resid []float64
		for i := a.Order; i < len(xs); i++ {
			pred, err := stats.PredictAR(coeffs, a.mean[slot], xs[i-a.Order:i])
			if err != nil {
				continue
			}
			resid = append(resid, xs[i]-pred)
		}
		sd := stats.StdDev(resid)
		if sd < 0.5 {
			sd = 0.5 // quantized signals can be near-perfectly predictable
		}
		a.resSD[slot] = sd
	}
	a.Reset()
	return nil
}

// Reset implements Detector.
func (a *ARPredict) Reset() {
	n := a.layout.NumNumeric()
	a.history = make([][]float64, n)
	a.streak = make([]int, n)
}

// Process implements Detector.
func (a *ARPredict) Process(o *window.Observation) (bool, error) {
	if a.layout == nil {
		return false, fmt.Errorf("baseline: ar-predict not trained")
	}
	flagged := false
	for slot := 0; slot < a.layout.NumNumeric(); slot++ {
		v, ok := windowMean(o.Numeric[slot])
		if !ok {
			// No data: a fail-stopped sensor stops being predictable.
			a.streak[slot]++
			if a.streak[slot] >= a.Persistence {
				flagged = true
			}
			continue
		}
		h := a.history[slot]
		if len(h) >= a.Order {
			pred, err := stats.PredictAR(a.coeffs[slot], a.mean[slot], h)
			if err == nil && math.Abs(v-pred) > a.K*a.resSD[slot] {
				a.streak[slot]++
			} else {
				a.streak[slot] = 0
			}
			if a.streak[slot] >= a.Persistence {
				flagged = true
			}
		}
		h = append(h, v)
		if len(h) > a.Order {
			h = h[len(h)-a.Order:]
		}
		a.history[slot] = h
	}
	return flagged, nil
}
