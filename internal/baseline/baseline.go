// Package baseline implements simplified but faithful versions of the
// prior-art detector families DICE is compared against in Table 2.1:
//
//   - MajorityVote — the homogeneous approach (§2.2): a numeric sensor is
//     flagged when it deviates persistently from the median of its
//     same-type peers.
//   - ARPredict — the time-series approach of Sharma et al. (§2.2): an
//     AR(2) model per numeric sensor flags persistent prediction residuals.
//   - LCSCluster — CLEAN-style (§2.3): binary sensors are clustered by the
//     longest-common-subsequence similarity of their hourly activation
//     strings; a sensor is flagged when its similarity to its own cluster
//     collapses.
//   - MarkovOnly — 6thSense-style (§2.3): a Markov chain over the global
//     quantized state, detection on zero-probability transitions only,
//     with no identification step.
//
// All baselines consume exactly the same windowed observations as DICE so
// the comparison is apples-to-apples.
package baseline

import (
	"repro/internal/device"
	"repro/internal/window"
)

// Detector is the common contract: batch training, then per-segment
// streaming detection.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Train fits the detector on fault-free windows.
	Train(layout *window.Layout, windows []*window.Observation) error
	// Reset clears per-segment state.
	Reset()
	// Process consumes one window and reports whether a fault is being
	// flagged at this window.
	Process(o *window.Observation) (bool, error)
}

// windowMean returns the mean of a numeric sensor's samples in a window,
// and whether it reported at all.
func windowMean(samples []float64) (float64, bool) {
	if len(samples) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples)), true
}

// typePeers maps each numeric slot to the slots of same-type sensors
// (excluding itself).
func typePeers(layout *window.Layout) [][]int {
	reg := layout.Registry()
	byType := make(map[device.Type][]int)
	for slot := 0; slot < layout.NumNumeric(); slot++ {
		t := reg.MustGet(layout.NumericID(slot)).Type
		byType[t] = append(byType[t], slot)
	}
	peers := make([][]int, layout.NumNumeric())
	for slot := 0; slot < layout.NumNumeric(); slot++ {
		t := reg.MustGet(layout.NumericID(slot)).Type
		for _, p := range byType[t] {
			if p != slot {
				peers[slot] = append(peers[slot], p)
			}
		}
	}
	return peers
}
