package baseline

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/window"
)

// MajorityVote is the homogeneous-redundancy baseline: each numeric sensor
// is compared against the median of its same-type peers each window, and
// flagged after `persistence` consecutive windows of deviation beyond
// k * (robust scale). Sensors without same-type peers are uncheckable —
// the approach's fundamental limitation (§2.2: redundant deployment is the
// prerequisite).
type MajorityVote struct {
	// K is the deviation multiplier (default 6).
	K float64
	// Persistence is how many consecutive deviating windows trigger a
	// flag (default 3).
	Persistence int

	layout *window.Layout
	peers  [][]int
	scale  []float64 // robust per-slot deviation scale from training
	streak []int
}

// Name implements Detector.
func (m *MajorityVote) Name() string { return "majority-vote" }

// Train implements Detector: it calibrates each sensor's typical deviation
// from its peer median.
func (m *MajorityVote) Train(layout *window.Layout, windows []*window.Observation) error {
	if m.K <= 0 {
		m.K = 6
	}
	if m.Persistence <= 0 {
		m.Persistence = 3
	}
	m.layout = layout
	m.peers = typePeers(layout)
	n := layout.NumNumeric()
	devs := make([][]float64, n)
	for _, o := range windows {
		if len(o.Numeric) != n {
			return fmt.Errorf("baseline: window shape mismatch")
		}
		for slot := 0; slot < n; slot++ {
			d, ok := m.deviation(o, slot)
			if ok {
				devs[slot] = append(devs[slot], d)
			}
		}
	}
	m.scale = make([]float64, n)
	for slot := range devs {
		s := stats.MAD(devs[slot])
		if s < 0.5 {
			s = 0.5 // floor: quantized sensors can have zero MAD
		}
		m.scale[slot] = s
	}
	m.Reset()
	return nil
}

// deviation returns |sensor - median(peers)| for a window.
func (m *MajorityVote) deviation(o *window.Observation, slot int) (float64, bool) {
	mine, ok := windowMean(o.Numeric[slot])
	if !ok || len(m.peers[slot]) == 0 {
		return 0, false
	}
	vals := make([]float64, 0, len(m.peers[slot]))
	for _, p := range m.peers[slot] {
		if v, ok := windowMean(o.Numeric[p]); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	return math.Abs(mine - stats.Median(vals)), true
}

// Reset implements Detector.
func (m *MajorityVote) Reset() {
	m.streak = make([]int, m.layout.NumNumeric())
}

// Process implements Detector.
func (m *MajorityVote) Process(o *window.Observation) (bool, error) {
	if m.layout == nil {
		return false, fmt.Errorf("baseline: majority-vote not trained")
	}
	flagged := false
	for slot := 0; slot < m.layout.NumNumeric(); slot++ {
		d, ok := m.deviation(o, slot)
		if !ok {
			// A silent sensor among reporting peers is itself suspicious.
			if _, reported := windowMean(o.Numeric[slot]); !reported && len(m.peers[slot]) > 0 {
				m.streak[slot]++
			} else {
				m.streak[slot] = 0
			}
		} else if d > m.K*m.scale[slot] {
			m.streak[slot]++
		} else {
			m.streak[slot] = 0
		}
		if m.streak[slot] >= m.Persistence {
			flagged = true
		}
	}
	return flagged, nil
}
