package baseline

import (
	"fmt"

	"repro/internal/window"
)

// LCSCluster is the CLEAN-style baseline (Ye et al., §2.3): binary sensors
// are profiled by their hourly activation strings; training clusters each
// sensor with the peers whose strings are most LCS-similar; at run time a
// sensor is flagged when its hourly similarity to its cluster drops far
// below the trained level for `persistence` consecutive hours. Detection
// granularity is an hour by construction, which is why this family is slow
// (Table 2.1 marks its promptness "-").
type LCSCluster struct {
	// ClusterSize is the number of nearest peers kept per sensor
	// (default 3).
	ClusterSize int
	// DropRatio is how far below the trained similarity a sensor must
	// fall to be flagged (default 0.5, i.e. half the trained similarity).
	DropRatio float64
	// Persistence is the consecutive-hour requirement (default 2).
	Persistence int

	layout   *window.Layout
	clusters [][]int
	expected []float64 // trained mean similarity to the cluster

	// Per-segment state: the current hour's activation bits.
	hourBits [][]bool
	hourLen  int
	streak   []int
}

// Name implements Detector.
func (l *LCSCluster) Name() string { return "lcs-cluster" }

// lcsLen computes the longest-common-subsequence length of two boolean
// strings.
func lcsLen(a, b []bool) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// similarity is the normalized LCS similarity of two hourly strings.
func similarity(a, b []bool) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 1
	}
	return float64(lcsLen(a, b)) / float64(n)
}

// hourStrings slices training windows into per-sensor hourly activation
// strings.
func hourStrings(layout *window.Layout, windows []*window.Observation) [][][]bool {
	nb := layout.NumBinary()
	hours := len(windows) / 60
	out := make([][][]bool, nb)
	for s := 0; s < nb; s++ {
		out[s] = make([][]bool, hours)
		for h := 0; h < hours; h++ {
			str := make([]bool, 60)
			for m := 0; m < 60; m++ {
				str[m] = windows[h*60+m].Binary[s]
			}
			out[s][h] = str
		}
	}
	return out
}

// Train implements Detector.
func (l *LCSCluster) Train(layout *window.Layout, windows []*window.Observation) error {
	if l.ClusterSize <= 0 {
		l.ClusterSize = 3
	}
	if l.DropRatio <= 0 {
		l.DropRatio = 0.5
	}
	if l.Persistence <= 0 {
		l.Persistence = 2
	}
	l.layout = layout
	nb := layout.NumBinary()
	if nb == 0 {
		l.clusters = nil
		l.expected = nil
		l.Reset()
		return nil
	}
	strs := hourStrings(layout, windows)
	hours := len(strs[0])
	if hours == 0 {
		return fmt.Errorf("baseline: lcs-cluster needs at least one training hour")
	}
	// Mean pairwise similarity across training hours.
	sim := make([][]float64, nb)
	for i := range sim {
		sim[i] = make([]float64, nb)
	}
	// Sampling hours keeps training O(nb^2 * hours/stride * 60^2) sane.
	stride := hours/24 + 1
	for i := 0; i < nb; i++ {
		for j := i + 1; j < nb; j++ {
			var sum float64
			var n int
			for h := 0; h < hours; h += stride {
				sum += similarity(strs[i][h], strs[j][h])
				n++
			}
			if n > 0 {
				sim[i][j] = sum / float64(n)
				sim[j][i] = sim[i][j]
			}
		}
	}
	// Cluster: top-k most similar peers per sensor.
	l.clusters = make([][]int, nb)
	l.expected = make([]float64, nb)
	for i := 0; i < nb; i++ {
		peers := topK(sim[i], i, l.ClusterSize)
		l.clusters[i] = peers
		var sum float64
		for _, p := range peers {
			sum += sim[i][p]
		}
		if len(peers) > 0 {
			l.expected[i] = sum / float64(len(peers))
		}
	}
	l.Reset()
	return nil
}

func topK(row []float64, self, k int) []int {
	type cand struct {
		idx int
		sim float64
	}
	var cs []cand
	for j, s := range row {
		if j != self {
			cs = append(cs, cand{j, s})
		}
	}
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].sim > cs[j-1].sim; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
	if len(cs) > k {
		cs = cs[:k]
	}
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.idx
	}
	return out
}

// Reset implements Detector.
func (l *LCSCluster) Reset() {
	nb := l.layout.NumBinary()
	l.hourBits = make([][]bool, nb)
	for i := range l.hourBits {
		l.hourBits[i] = make([]bool, 0, 60)
	}
	l.hourLen = 0
	l.streak = make([]int, nb)
}

// Process implements Detector.
func (l *LCSCluster) Process(o *window.Observation) (bool, error) {
	if l.layout == nil {
		return false, fmt.Errorf("baseline: lcs-cluster not trained")
	}
	nb := l.layout.NumBinary()
	for s := 0; s < nb; s++ {
		l.hourBits[s] = append(l.hourBits[s], o.Binary[s])
	}
	l.hourLen++
	if l.hourLen < 60 {
		return false, nil
	}
	// Hour boundary: evaluate cluster similarity.
	flagged := false
	for s := 0; s < nb; s++ {
		peers := l.clusters[s]
		if len(peers) == 0 || l.expected[s] <= 0 {
			continue
		}
		var sum float64
		for _, p := range peers {
			sum += similarity(l.hourBits[s], l.hourBits[p])
		}
		got := sum / float64(len(peers))
		if got < l.expected[s]*l.DropRatio {
			l.streak[s]++
		} else {
			l.streak[s] = 0
		}
		if l.streak[s] >= l.Persistence {
			flagged = true
		}
	}
	for s := 0; s < nb; s++ {
		l.hourBits[s] = l.hourBits[s][:0]
	}
	l.hourLen = 0
	return flagged, nil
}
