package baseline

import (
	"testing"

	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/window"
)

// blHome builds a small simulated home and a training window slice.
func blHome(t testing.TB) (*simhome.Home, []*window.Observation) {
	t.Helper()
	spec := simhome.SpecDHouseA()
	spec.Name = "bl-test"
	spec.Hours = 4 * 24
	h, err := simhome.New(spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	return h, h.WindowRange(0, 2*24*60)
}

// trainAll trains one detector and fails the test on error.
func trainOne(t testing.TB, d Detector, h *simhome.Home, tw []*window.Observation) {
	t.Helper()
	if err := d.Train(h.Layout(), tw); err != nil {
		t.Fatalf("train %s: %v", d.Name(), err)
	}
}

// runRange feeds windows [from, to) and returns the first flagged window
// or -1.
func runRange(t testing.TB, d Detector, h *simhome.Home, from, to int, inj *faults.Injector) int {
	t.Helper()
	d.Reset()
	for w := from; w < to; w++ {
		o := h.Window(w)
		if inj != nil {
			o = inj.Apply(o, w-from)
		}
		hit, err := d.Process(o)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if hit {
			return w - from
		}
	}
	return -1
}

func TestDetectorsRequireTraining(t *testing.T) {
	h, _ := blHome(t)
	o := h.Window(0)
	for _, d := range []Detector{&MajorityVote{}, &ARPredict{}, &LCSCluster{}, &MarkovOnly{}, &DICEDetector{}} {
		if _, err := d.Process(o); err == nil {
			t.Errorf("%s processed without training", d.Name())
		}
	}
}

func TestMajorityVoteDetectsStuckPeer(t *testing.T) {
	h, tw := blHome(t)
	d := &MajorityVote{}
	trainOne(t, d, h, tw)

	// Stick a temperature sensor far from its same-type peers.
	target, ok := h.Registry().Lookup("temp-kitchen")
	if !ok {
		t.Fatal("no temp-kitchen")
	}
	inj, err := faults.NewInjector(h.Layout(), 3,
		faults.Fault{Device: target, Type: faults.StuckAt, Onset: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Find a run where the stuck level diverges (the injector sticks at a
	// wrong level half the time; seed 3 does).
	start := 2 * 24 * 60
	hit := runRange(t, d, h, start, start+6*60, inj)
	if hit < 0 {
		t.Skip("stuck level landed in-range for this seed; majority vote cannot see it")
	}
}

func TestMajorityVoteFalselyFlagsHeterogeneousRooms(t *testing.T) {
	// The homogeneous approach's documented failure mode (§2.2, Table 2.1):
	// same-type sensors in *different rooms* legitimately diverge whenever
	// one room is occupied, so on heterogeneous data the majority vote
	// fires constantly. This test pins that behaviour — it is why the
	// baseline's precision collapses in the Table 2.1 comparison.
	h, tw := blHome(t)
	d := &MajorityVote{}
	trainOne(t, d, h, tw)
	start := 2 * 24 * 60
	flagged := 0
	for seg := 0; seg < 6; seg++ {
		if runRange(t, d, h, start+seg*360, start+(seg+1)*360, nil) >= 0 {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("majority vote flagged nothing; the heterogeneity failure mode disappeared — retune the Table 2.1 narrative")
	}
}

func TestARPredictDetectsFailStop(t *testing.T) {
	h, tw := blHome(t)
	d := &ARPredict{}
	trainOne(t, d, h, tw)
	target, ok := h.Registry().Lookup("sound-living")
	if !ok {
		t.Fatal("no sound-living")
	}
	inj, err := faults.NewInjector(h.Layout(), 3,
		faults.Fault{Device: target, Type: faults.FailStop, Onset: 10})
	if err != nil {
		t.Fatal(err)
	}
	start := 2 * 24 * 60
	if hit := runRange(t, d, h, start, start+6*60, inj); hit < 0 {
		t.Error("AR predictor missed a fail-stop (silent sensor)")
	}
}

func TestARPredictQuietOnCleanData(t *testing.T) {
	h, tw := blHome(t)
	d := &ARPredict{}
	trainOne(t, d, h, tw)
	start := 2 * 24 * 60
	if hit := runRange(t, d, h, start, start+6*60, nil); hit >= 0 {
		t.Errorf("AR predictor flagged clean data at window %d", hit)
	}
}

func TestLCSClusterTrainsAndRuns(t *testing.T) {
	h, tw := blHome(t)
	d := &LCSCluster{}
	trainOne(t, d, h, tw)
	start := 2 * 24 * 60
	// Clean run: should not flag more than occasionally.
	if hit := runRange(t, d, h, start, start+6*60, nil); hit >= 0 {
		t.Logf("lcs-cluster flagged clean data at %d (tolerated: threshold-based)", hit)
	}
}

func TestLCSHelpers(t *testing.T) {
	a := []bool{true, false, true, true}
	b := []bool{true, true, false, true}
	if got := lcsLen(a, b); got != 3 {
		t.Errorf("lcsLen = %d, want 3", got)
	}
	if got := lcsLen(nil, b); got != 0 {
		t.Errorf("lcsLen(nil) = %d", got)
	}
	if s := similarity(a, a); s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	if s := similarity(nil, nil); s != 1 {
		t.Errorf("empty similarity = %v", s)
	}
	got := topK([]float64{0.1, 0.9, 0.5, 0.7}, 0, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("topK = %v, want [1 3]", got)
	}
}

func TestMarkovOnlyMatchesDICEDetectionOnFailStop(t *testing.T) {
	h, tw := blHome(t)
	mk := &MarkovOnly{}
	dd := &DICEDetector{}
	trainOne(t, mk, h, tw)
	trainOne(t, dd, h, tw)
	target, ok := h.Registry().Lookup("light-kitchen")
	if !ok {
		t.Fatal("no light-kitchen")
	}
	inj, err := faults.NewInjector(h.Layout(), 5,
		faults.Fault{Device: target, Type: faults.FailStop, Onset: 0})
	if err != nil {
		t.Fatal(err)
	}
	start := 2*24*60 + 12*60 // afternoon: kitchen in use
	mkHit := runRange(t, mk, h, start, start+6*60, inj)
	ddHit := runRange(t, dd, h, start, start+6*60, inj)
	if mkHit < 0 || ddHit < 0 {
		t.Fatalf("fail-stop missed: markov=%d dice=%d", mkHit, ddHit)
	}
}

func TestCompareRunsAllDetectors(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison integration test")
	}
	spec := simhome.SpecHouseA()
	spec.Hours = 4 * 24
	rows, err := Compare(spec, 11, CompareConfig{
		PrecomputeHours: 48,
		SegmentHours:    6,
		Trials:          6,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Detector] = true
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s: out-of-range metrics %+v", r.Detector, r)
		}
	}
	for _, want := range []string{"DICE", "majority-vote", "ar-predict", "lcs-cluster", "markov-only"} {
		if !names[want] {
			t.Errorf("missing detector %q", want)
		}
	}
}

func TestCompareValidation(t *testing.T) {
	spec := simhome.SpecHouseA()
	spec.Hours = 10
	if _, err := Compare(spec, 1, CompareConfig{PrecomputeHours: 300}); err == nil {
		t.Error("too-short dataset accepted")
	}
}

func TestTypePeers(t *testing.T) {
	reg := device.NewRegistry()
	reg.MustAdd("t1", device.Numeric, device.Temperature, "a")
	reg.MustAdd("l1", device.Numeric, device.Light, "a")
	reg.MustAdd("t2", device.Numeric, device.Temperature, "b")
	l := window.NewLayout(reg)
	peers := typePeers(l)
	if len(peers[0]) != 1 || peers[0][0] != 2 {
		t.Errorf("peers[0] = %v, want [2]", peers[0])
	}
	if len(peers[1]) != 0 {
		t.Errorf("light should have no peers: %v", peers[1])
	}
}

func TestWindowMean(t *testing.T) {
	if v, ok := windowMean([]float64{1, 2, 3}); !ok || v != 2 {
		t.Errorf("windowMean = %v, %v", v, ok)
	}
	if _, ok := windowMean(nil); ok {
		t.Error("empty window reported a mean")
	}
}

func BenchmarkMajorityVoteProcess(b *testing.B) {
	spec := simhome.SpecDHouseA()
	spec.Name = "bl-bench"
	spec.Hours = 2 * 24
	h, err := simhome.New(spec, 13)
	if err != nil {
		b.Fatal(err)
	}
	d := &MajorityVote{}
	if err := d.Train(h.Layout(), h.WindowRange(0, 24*60)); err != nil {
		b.Fatal(err)
	}
	o := h.Window(25 * 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Process(o); err != nil {
			b.Fatal(err)
		}
	}
}
