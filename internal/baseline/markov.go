package baseline

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/window"
)

// MarkovOnly is the 6thSense-style baseline (§2.3): it quantizes the global
// sensor state exactly like DICE's binarizer, but detection is purely a
// Markov-chain check over the state sequence — an unseen state or a
// zero-probability transition flags a fault. There is no correlation-check
// candidate machinery and no identification step (6thSense "detects the
// presence of a faulty sensor but does not identify the sensor").
type MarkovOnly struct {
	bin    *core.Binarizer
	states map[string]int
	chain  *markov.Chain
	prev   int
}

// Name implements Detector.
func (m *MarkovOnly) Name() string { return "markov-only" }

// Train implements Detector.
func (m *MarkovOnly) Train(layout *window.Layout, windows []*window.Observation) error {
	tr := core.NewTrainer(layout, time.Minute)
	for _, o := range windows {
		if err := tr.Calibrate(o); err != nil {
			return err
		}
	}
	if err := tr.FinishCalibration(); err != nil {
		return err
	}
	thre, err := tr.ValueThre()
	if err != nil {
		return err
	}
	bin, err := core.NewBinarizer(layout, thre)
	if err != nil {
		return err
	}
	m.bin = bin
	m.states = make(map[string]int)
	m.chain = markov.NewChain()
	prev := -1
	for _, o := range windows {
		v, err := bin.StateSet(o)
		if err != nil {
			return err
		}
		id, ok := m.states[v.Key()]
		if !ok {
			id = len(m.states)
			m.states[v.Key()] = id
		}
		if prev >= 0 {
			m.chain.Observe(prev, id)
		}
		prev = id
	}
	m.Reset()
	return nil
}

// Reset implements Detector.
func (m *MarkovOnly) Reset() { m.prev = -1 }

// Process implements Detector.
func (m *MarkovOnly) Process(o *window.Observation) (bool, error) {
	if m.bin == nil {
		return false, fmt.Errorf("baseline: markov-only not trained")
	}
	v, err := m.bin.StateSet(o)
	if err != nil {
		return false, err
	}
	id, known := m.states[v.Key()]
	if !known {
		m.prev = -1
		return true, nil
	}
	violated := false
	if m.prev >= 0 && !m.chain.Possible(m.prev, id) {
		violated = true
	}
	m.prev = id
	return violated, nil
}
