package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/window"
)

// DICEDetector adapts the full DICE pipeline to the baseline Detector
// interface so Compare can run every detector over identical data.
type DICEDetector struct {
	cfg core.Config
	ctx *core.Context
	det *core.Detector
}

// Name implements Detector.
func (d *DICEDetector) Name() string { return "DICE" }

// Train implements Detector.
func (d *DICEDetector) Train(layout *window.Layout, windows []*window.Observation) error {
	ctx, err := core.TrainWindows(layout, time.Minute, windows)
	if err != nil {
		return err
	}
	det, err := core.New(ctx, core.WithConfig(d.cfg))
	if err != nil {
		return err
	}
	d.ctx = ctx
	d.det = det
	return nil
}

// Reset implements Detector.
func (d *DICEDetector) Reset() {
	if d.det != nil {
		d.det.Reset()
	}
}

// Process implements Detector.
func (d *DICEDetector) Process(o *window.Observation) (bool, error) {
	if d.det == nil {
		return false, fmt.Errorf("baseline: DICE not trained")
	}
	res, err := d.det.Process(o)
	if err != nil {
		return false, err
	}
	return res.Detected, nil
}

// CompareConfig parametrizes a comparison run.
type CompareConfig struct {
	PrecomputeHours int
	SegmentHours    int
	Trials          int
	Seed            int64
}

func (c CompareConfig) normalize() CompareConfig {
	if c.PrecomputeHours <= 0 {
		c.PrecomputeHours = 300
	}
	if c.SegmentHours <= 0 {
		c.SegmentHours = 6
	}
	if c.Trials <= 0 {
		c.Trials = 40
	}
	return c
}

// CompareRow is one detector's aggregate over a dataset.
type CompareRow struct {
	Detector          string
	Precision         float64
	Recall            float64
	MeanDetectMinutes float64
}

// DefaultDetectors returns DICE plus the four baseline families.
func DefaultDetectors() []Detector {
	return []Detector{
		&DICEDetector{},
		&MajorityVote{},
		&ARPredict{},
		&LCSCluster{},
		&MarkovOnly{},
	}
}

// Compare trains every detector on the same fault-free prefix of the
// simulated dataset and evaluates all of them on identical fault-free and
// faulty segments, returning one row per detector.
func Compare(spec simhome.Spec, seed int64, cfg CompareConfig) ([]CompareRow, error) {
	return CompareDetectors(spec, seed, cfg, DefaultDetectors())
}

// CompareDetectors is Compare with an explicit detector list.
func CompareDetectors(spec simhome.Spec, seed int64, cfg CompareConfig, dets []Detector) ([]CompareRow, error) {
	cfg = cfg.normalize()
	h, err := simhome.New(spec, seed)
	if err != nil {
		return nil, err
	}
	trainW := cfg.PrecomputeHours * 60
	if trainW >= h.Windows() {
		return nil, fmt.Errorf("baseline: dataset %s too short for %dh precompute", spec.Name, cfg.PrecomputeHours)
	}
	segLen := cfg.SegmentHours * 60
	numSegs := (h.Windows() - trainW) / segLen
	if numSegs == 0 {
		return nil, fmt.Errorf("baseline: dataset %s leaves no segments", spec.Name)
	}

	trainWindows := h.WindowRange(0, trainW)
	for _, d := range dets {
		if err := d.Train(h.Layout(), trainWindows); err != nil {
			return nil, fmt.Errorf("baseline: train %s: %w", d.Name(), err)
		}
	}

	type tally struct {
		tp, fn  int
		fpSegs  int
		latency float64
		latN    int
	}
	tallies := make([]tally, len(dets))

	runSegment := func(seg int, inj *faults.Injector, onset int) error {
		base := trainW + seg*segLen
		for _, d := range dets {
			d.Reset()
		}
		detectedAt := make([]int, len(dets))
		for i := range detectedAt {
			detectedAt[i] = -1
		}
		for w := 0; w < segLen; w++ {
			o := h.Window(base + w)
			if inj != nil {
				o = inj.Apply(o, w)
			}
			for i, d := range dets {
				if detectedAt[i] >= 0 {
					continue
				}
				hit, err := d.Process(o)
				if err != nil {
					return fmt.Errorf("baseline: %s: %w", d.Name(), err)
				}
				if hit {
					detectedAt[i] = w
				}
			}
		}
		for i := range dets {
			if inj == nil {
				if detectedAt[i] >= 0 {
					tallies[i].fpSegs++
				}
				continue
			}
			if detectedAt[i] >= 0 {
				tallies[i].tp++
				lat := float64(detectedAt[i] - onset)
				if lat < 0 {
					lat = 0
				}
				tallies[i].latency += lat
				tallies[i].latN++
			} else {
				tallies[i].fn++
			}
		}
		return nil
	}

	// Fault-free pass.
	for seg := 0; seg < numSegs; seg++ {
		if err := runSegment(seg, nil, 0); err != nil {
			return nil, err
		}
	}
	// Faulty pass.
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(trial)))
		fs, err := faults.Plan(h.Layout(), rng, 1, faults.SensorTypes(), 60, segLen/2)
		if err != nil {
			return nil, err
		}
		inj, err := faults.NewInjector(h.Layout(), cfg.Seed*31+int64(trial), fs...)
		if err != nil {
			return nil, err
		}
		if err := runSegment(trial%numSegs, inj, fs[0].Onset); err != nil {
			return nil, err
		}
	}

	rows := make([]CompareRow, len(dets))
	for i, d := range dets {
		t := tallies[i]
		fpRate := float64(t.fpSegs) / float64(numSegs)
		fp := fpRate * float64(cfg.Trials)
		precision := 1.0
		if float64(t.tp)+fp > 0 {
			precision = float64(t.tp) / (float64(t.tp) + fp)
		}
		recall := 1.0
		if t.tp+t.fn > 0 {
			recall = float64(t.tp) / float64(t.tp+t.fn)
		}
		lat := 0.0
		if t.latN > 0 {
			lat = t.latency / float64(t.latN)
		}
		rows[i] = CompareRow{
			Detector:          d.Name(),
			Precision:         precision,
			Recall:            recall,
			MeanDetectMinutes: lat,
		}
	}
	return rows, nil
}
