// Command dice-gen generates a synthetic smart-home recording and writes it
// as a dataset directory (manifest.json + events.csv).
//
// Usage:
//
//	dice-gen -dataset D_houseA -out ./data/D_houseA [-hours 48] [-seed 42]
//	dice-gen -scenario storm-2 -out ./data/storm-2 [-trial 0] [-seed 42]
//
// -hours truncates the recording (0 keeps the spec's full length from
// Table 4.1). The named datasets are the ten of the paper; `dice-gen -list`
// prints them.
//
// -scenario emits one seeded trial of the adversarial scenario library
// instead: the corrupted segment as an ordinary dataset directory plus a
// scenario.json ground-truth manifest naming the injected faults and the
// devices an identifier should blame. `dice-gen -list-scenarios` prints
// the library.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/simhome"
	"repro/internal/window"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("dataset", "D_houseA", "dataset spec name (see -list)")
	out := flag.String("out", "", "output directory (required)")
	hours := flag.Int("hours", 0, "truncate the recording to this many hours (0 = full spec)")
	seed := flag.Int64("seed", 42, "simulation seed")
	compact := flag.Bool("compact", false, "write binary events (smaller, faster to load)")
	list := flag.Bool("list", false, "list dataset names and exit")
	scenario := flag.String("scenario", "", "emit one scenario-library trial as a labeled dataset (see -list-scenarios)")
	trial := flag.Int("trial", 0, "trial index for -scenario")
	listScenarios := flag.Bool("list-scenarios", false, "list scenario names and exit")
	flag.Parse()

	if *list {
		for _, s := range simhome.AllSpecs() {
			fmt.Printf("%-10s %5dh  %2d binary  %2d numeric  %d actuators  %2d activities\n",
				s.Name, s.Hours, count(s, 1), count(s, 2), count(s, 3), s.NumActivities)
		}
		return nil
	}
	if *listScenarios {
		for _, n := range eval.ScenarioNames() {
			fmt.Println(n)
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	if *scenario != "" {
		return genScenario(*scenario, *trial, *seed, *out, *compact)
	}
	spec, err := simhome.SpecByName(*name)
	if err != nil {
		return err
	}
	if *hours > 0 {
		spec.Hours = *hours
	}
	h, err := simhome.New(spec, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generating %s: %d devices, %d hours...\n",
		spec.Name, h.Registry().Len(), spec.Hours)
	evts := h.Events(0, h.Windows())
	m := dataset.ManifestFor(spec.Name, spec.Hours, *seed, h.Registry())
	saveFn := dataset.Save
	if *compact {
		saveFn = dataset.SaveCompact
	}
	if err := saveFn(*out, m, evts); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events\n", *out, len(evts))
	return nil
}

// scenarioDays is the trial area dice-gen simulates for scenario emission:
// enough whole days for the library to rotate trials through.
const scenarioDays = 2

// genScenario emits one seeded trial of the named library scenario as a
// dataset directory plus a scenario.json ground-truth manifest. The segment
// is rebased to time zero, so fault onsets in the label are direct window
// indices into the emitted recording. Ghost-device events are present in
// events.csv under their unregistered ID; window.FromEvents drops them (the
// manifest registry has never heard of the device), which is exactly the
// blind spot the ghost check exists for — the label file is the only place
// the spoofed ID is recorded.
func genScenario(name string, trial int, seed int64, out string, compact bool) error {
	spec := simhome.SpecDTwoR()
	spec.Hours = scenarioDays * 24
	h, err := simhome.New(spec, seed)
	if err != nil {
		return err
	}
	lib, err := eval.NewScenarioLibrary(h, 0, scenarioDays)
	if err != nil {
		return err
	}
	si, err := lib.Trial(name, trial, seed)
	if err != nil {
		return err
	}
	obs, err := si.Windows(h)
	if err != nil {
		return err
	}
	for i, o := range obs {
		o.Index = i
	}
	evts := renderEvents(h, obs)
	dsName := fmt.Sprintf("scenario_%s_t%d", name, trial)
	m := dataset.ManifestFor(dsName, si.SegLen/60, seed, h.Registry())
	saveFn := dataset.Save
	if compact {
		saveFn = dataset.SaveCompact
	}
	if err := saveFn(out, m, evts); err != nil {
		return err
	}
	if err := writeScenarioLabel(out, h, si, trial, seed); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events, scenario %s trial %d (%d ground-truth devices)\n",
		out, len(evts), name, trial, len(si.GroundTruth))
	return nil
}

// renderEvents lowers windowed observations back to a raw event stream:
// actuations at the window start, binary firings mid-window, numeric
// samples spread evenly. Ghost actuations survive because the renderer
// emits whatever IDs the observation carries, registered or not.
func renderEvents(h *simhome.Home, obs []*window.Observation) []event.Event {
	reg := h.Registry()
	bins, nums := reg.Binaries(), reg.Numerics()
	var evts []event.Event
	for _, o := range obs {
		base := time.Duration(o.Index) * window.DefaultDuration
		for _, id := range o.Actuated {
			evts = append(evts, event.Event{At: base + 5*time.Second, Device: id, Value: 1})
		}
		for slot, fired := range o.Binary {
			if fired {
				evts = append(evts, event.Event{At: base + 30*time.Second, Device: bins[slot], Value: 1})
			}
		}
		for slot, samples := range o.Numeric {
			step := window.DefaultDuration / time.Duration(len(samples)+1)
			for k, v := range samples {
				evts = append(evts, event.Event{At: base + time.Duration(k+1)*step, Device: nums[slot], Value: v})
			}
		}
	}
	return evts
}

// Ground-truth label schema for scenario.json. Onsets and segment offsets
// are window indices into the emitted (rebased) recording.
type scenarioLabel struct {
	Name        string                   `json:"name"`
	Description string                   `json:"description"`
	Trial       int                      `json:"trial"`
	Seed        int64                    `json:"seed"`
	Benign      bool                     `json:"benign"`
	DetectOnly  bool                     `json:"detect_only"`
	SegBase     int                      `json:"seg_base"`
	SegLen      int                      `json:"seg_len"`
	Onset       int                      `json:"onset"`
	MaxFaults   int                      `json:"max_faults"`
	GroundTruth []labelDevice            `json:"ground_truth"`
	Faults      []labelFault             `json:"faults,omitempty"`
	Ghosts      []labelGhost             `json:"ghosts,omitempty"`
	Replays     []labelReplay            `json:"replays,omitempty"`
	Occupancy   *simhome.OccupancyChange `json:"occupancy,omitempty"`
}

type labelDevice struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

type labelFault struct {
	Device int    `json:"device"`
	Type   string `json:"type"`
	Onset  int    `json:"onset"`
	Delay  int    `json:"delay,omitempty"`
}

type labelGhost struct {
	Device int `json:"device"`
	Onset  int `json:"onset"`
	Every  int `json:"every"`
}

type labelReplay struct {
	SrcFrom int `json:"src_from"`
	SrcLen  int `json:"src_len"`
	At      int `json:"at"`
}

func writeScenarioLabel(dir string, h *simhome.Home, si *eval.ScenarioInstance, trial int, seed int64) error {
	lbl := scenarioLabel{
		Name: si.Name, Description: si.Description, Trial: trial, Seed: seed,
		Benign: si.Benign, DetectOnly: si.DetectOnly,
		SegBase: si.SegBase, SegLen: si.SegLen, Onset: si.Onset, MaxFaults: si.MaxFaults,
		GroundTruth: []labelDevice{},
	}
	for _, id := range si.GroundTruth {
		lbl.GroundTruth = append(lbl.GroundTruth, labelDevice{ID: int(id), Name: deviceName(h, id)})
	}
	for _, f := range si.Scenario.Faults {
		lbl.Faults = append(lbl.Faults, labelFault{
			Device: int(f.Device), Type: f.Type.String(), Onset: f.Onset, Delay: f.Delay,
		})
	}
	for _, g := range si.Scenario.Ghosts {
		lbl.Ghosts = append(lbl.Ghosts, labelGhost{Device: int(g.Device), Onset: g.Onset, Every: g.Every})
	}
	for _, r := range si.Scenario.Replays {
		lbl.Replays = append(lbl.Replays, labelReplay{SrcFrom: r.SrcFrom, SrcLen: r.SrcLen, At: r.At})
	}
	lbl.Occupancy = si.Occupancy
	buf, err := json.MarshalIndent(lbl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "scenario.json"), append(buf, '\n'), 0o644)
}

// deviceName resolves an ID through the registry, labeling unregistered
// (spoofed) IDs explicitly.
func deviceName(h *simhome.Home, id device.ID) string {
	if d, err := h.Registry().Get(id); err == nil {
		return d.Name
	}
	return fmt.Sprintf("ghost-%d", int(id))
}

func count(s simhome.Spec, kind int) int {
	n := 0
	for _, d := range s.Devices {
		if int(d.Kind) == kind {
			n++
		}
	}
	return n
}
