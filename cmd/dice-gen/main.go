// Command dice-gen generates a synthetic smart-home recording and writes it
// as a dataset directory (manifest.json + events.csv).
//
// Usage:
//
//	dice-gen -dataset D_houseA -out ./data/D_houseA [-hours 48] [-seed 42]
//
// -hours truncates the recording (0 keeps the spec's full length from
// Table 4.1). The named datasets are the ten of the paper; `dice-gen -list`
// prints them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/simhome"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("dataset", "D_houseA", "dataset spec name (see -list)")
	out := flag.String("out", "", "output directory (required)")
	hours := flag.Int("hours", 0, "truncate the recording to this many hours (0 = full spec)")
	seed := flag.Int64("seed", 42, "simulation seed")
	compact := flag.Bool("compact", false, "write binary events (smaller, faster to load)")
	list := flag.Bool("list", false, "list dataset names and exit")
	flag.Parse()

	if *list {
		for _, s := range simhome.AllSpecs() {
			fmt.Printf("%-10s %5dh  %2d binary  %2d numeric  %d actuators  %2d activities\n",
				s.Name, s.Hours, count(s, 1), count(s, 2), count(s, 3), s.NumActivities)
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	spec, err := simhome.SpecByName(*name)
	if err != nil {
		return err
	}
	if *hours > 0 {
		spec.Hours = *hours
	}
	h, err := simhome.New(spec, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generating %s: %d devices, %d hours...\n",
		spec.Name, h.Registry().Len(), spec.Hours)
	evts := h.Events(0, h.Windows())
	m := dataset.ManifestFor(spec.Name, spec.Hours, *seed, h.Registry())
	saveFn := dataset.Save
	if *compact {
		saveFn = dataset.SaveCompact
	}
	if err := saveFn(*out, m, evts); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d events\n", *out, len(evts))
	return nil
}

func count(s simhome.Spec, kind int) int {
	n := 0
	for _, d := range s.Devices {
		if int(d.Kind) == kind {
			n++
		}
	}
	return n
}
