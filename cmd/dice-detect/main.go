// Command dice-detect replays a slice of a dataset through the real-time
// phase of DICE against a trained context and reports violations and
// alerts.
//
// Usage:
//
//	dice-detect -data ./data/D_houseA -context context.json [-from 300] [-hours 6]
//	            [-fault fail-stop:light-kitchen:60]
//
// -from/-hours select the replayed slice (hours from the recording start).
// -fault injects a fault into the replay: CLASS:DEVICE:ONSETMIN with class
// one of fail-stop, outlier, stuck-at, high-noise, spike.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/device"
	"repro/internal/faults"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-detect:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "", "dataset directory (required)")
	ctxFile := flag.String("context", "context.json", "trained context file")
	from := flag.Int("from", 300, "replay start, hours from recording start")
	hours := flag.Int("hours", 6, "replay length in hours")
	faultSpec := flag.String("fault", "", "inject CLASS:DEVICE:ONSETMIN into the replay")
	flag.Parse()

	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := dataset.Load(*dataDir)
	if err != nil {
		return err
	}
	cf, err := os.Open(*ctxFile)
	if err != nil {
		return err
	}
	ctx, err := core.LoadContext(cf, ds.Layout)
	cf.Close()
	if err != nil {
		return err
	}
	det, err := core.New(ctx)
	if err != nil {
		return err
	}

	var inj *faults.Injector
	if *faultSpec != "" {
		inj, err = parseFault(ds, *faultSpec)
		if err != nil {
			return err
		}
	}

	obs, err := ds.Windows()
	if err != nil {
		return err
	}
	start := *from * 60
	end := start + *hours*60
	if start >= len(obs) {
		return fmt.Errorf("replay start %dh beyond recording (%dh)", *from, len(obs)/60)
	}
	if end > len(obs) {
		end = len(obs)
	}

	violations, alerts := 0, 0
	for w := start; w < end; w++ {
		o := obs[w]
		if inj != nil {
			o = inj.Apply(o, w-start)
		}
		res, err := det.Process(o)
		if err != nil {
			return err
		}
		if res.Detected {
			violations++
			fmt.Printf("%s  VIOLATION (%s check) suspects=%s\n",
				minuteStamp(w), res.Violation, deviceNames(ds, res.Probable))
		}
		if res.Alert != nil {
			alerts++
			fmt.Printf("%s  ALERT faulty=%s cause=%s detected@%s\n",
				minuteStamp(w), deviceNames(ds, res.Alert.Devices),
				res.Alert.Cause, minuteStamp(res.Alert.DetectedWindow))
		}
	}
	fmt.Printf("replayed %d windows: %d violations, %d alerts\n", end-start, violations, alerts)
	return nil
}

func minuteStamp(w int) string {
	d := time.Duration(w) * time.Minute
	return fmt.Sprintf("day%d %02d:%02d", w/(24*60), int(d.Hours())%24, w%60)
}

func deviceNames(ds *dataset.Dataset, ids []device.ID) string {
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		names = append(names, ds.Registry.MustGet(id).Name)
	}
	return strings.Join(names, ",")
}

func parseFault(ds *dataset.Dataset, spec string) (*faults.Injector, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -fault %q, want CLASS:DEVICE:ONSETMIN", spec)
	}
	var class faults.Type
	for _, t := range append(faults.SensorTypes(), faults.ActuatorTypes()...) {
		if t.String() == parts[0] {
			class = t
		}
	}
	if class == 0 {
		return nil, fmt.Errorf("unknown fault class %q", parts[0])
	}
	id, ok := ds.Registry.Lookup(parts[1])
	if !ok {
		return nil, fmt.Errorf("unknown device %q", parts[1])
	}
	onset, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad onset %q: %w", parts[2], err)
	}
	return faults.NewInjector(ds.Layout, 1, faults.Fault{Device: id, Type: class, Onset: onset})
}
