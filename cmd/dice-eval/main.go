// Command dice-eval reproduces the paper's evaluation: it simulates the ten
// datasets of Table 4.1, runs the §V protocol, and prints every table and
// figure of the evaluation section.
//
// Usage:
//
//	dice-eval [-exp all|datasets|accuracy|latency|checks|degree|compute|ratio|actuators|multifault|ablations|baselines|hub|recovery|cluster|drift|timing|scenarios]
//	          [-datasets houseA,twor,...] [-trials N] [-seed N] [-csv]
//	          [-workers N] [-benchjson FILE]
//	          [-hub-homes M] [-hub-shards S] [-hub-hours H] [-hubjson FILE]
//	          [-recovery-hours H] [-recoveryjson FILE]
//	          [-cluster-nodes N] [-cluster-homes M] [-cluster-hours H] [-clusterjson FILE]
//	          [-drift-days D] [-drift-extra A] [-drift-admit N] [-driftjson FILE]
//	          [-timing-delay W] [-timing-trials N] [-timingjson FILE]
//	          [-scenario-trials N] [-scenario-train H] [-scenariosjson FILE]
//
// `-trials 100` reproduces the paper-scale run (the default is 40 to keep
// the full ten-dataset sweep under a minute on a laptop). `-workers` sizes
// the evaluation worker pool (0 = GOMAXPROCS); results are bit-identical at
// any worker count. `-benchjson` writes wall-clock and per-stage timings plus
// a telemetry snapshot (the same dice_* series a live gateway serves on
// /metrics) to a JSON file (default BENCH_eval.json; empty disables) so the
// performance trajectory is tracked across changes.
//
// `-exp hub` benchmarks the multi-tenant hub instead: M homes replay
// concurrent streams through one sharded hub, and the throughput plus
// per-shard queue tallies land in BENCH_hub.json (`-hubjson`).
//
// `-exp recovery` prices the write-ahead log (ingest throughput per fsync
// policy against a no-WAL baseline) and times a simulated crash recovery
// from checkpoint + WAL tail, verifying the recovered state is
// bit-identical; the numbers land in BENCH_recovery.json
// (`-recoveryjson`).
//
// `-exp cluster` benchmarks the federated hub cluster: N in-process nodes
// share a durable state tree, M homes stream DWB1 batches over HTTP, and
// mid-replay the bench live-migrates one tenant and kills one node. It
// reports federation efficiency (cluster vs solo throughput), migration
// and fail-over latency, and the bit-identity verdict; the numbers land in
// BENCH_cluster.json (`-clusterjson`).
//
// `-exp drift` benchmarks online context adaptation: a context trained on
// the original routine replays a drifted stream (the residents adopt
// `-drift-extra` new activities) through a static detector and an
// adapter-backed one, then injects sensor faults after the adaptation
// window. The adaptive arm must cut the static arm's false alarms without
// missing a single injected fault; the numbers land in BENCH_drift.json
// (`-driftjson`).
//
// `-exp timing` benchmarks the time-aware transition checks: timing faults
// (delayed actuators, slowly degrading sensors) that are structurally
// invisible are replayed through a structural-only detector and a
// timing-aware one. The timing arm must catch at least 80% of what the
// structural arm misses while flagging zero clean windows; the numbers land
// in BENCH_timing.json (`-timingjson`).
//
// `-exp scenarios` grades the multi-fault detector on the adversarial
// scenario library: spoofed ghost devices, replay attacks, malicious
// actuator triggering, benign occupancy changes (guest, vacation), and
// mixed-fault storms of 2–4 point+stream faults with staggered onsets.
// Floors: zero alerts on the benign scenarios, and the two-fault storm's
// alerts must name every injected device in >= 80% of trials. Per-scenario
// detection and identification precision/recall land in
// BENCH_scenarios.json (`-scenariosjson`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/eval"
	"repro/internal/report"
	"repro/internal/simhome"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-eval:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment to run")
	dsFlag := flag.String("datasets", "", "comma-separated dataset names (default: all ten)")
	trials := flag.Int("trials", 40, "faulty segments per dataset (paper: 100)")
	seed := flag.Int64("seed", 42, "simulation seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS); results are identical at any count")
	benchJSON := flag.String("benchjson", "BENCH_eval.json", "write wall-clock/per-stage timings to this JSON file (empty = off)")
	hubHomes := flag.Int("hub-homes", 8, "concurrent homes for -exp hub")
	hubShards := flag.Int("hub-shards", 4, "hub worker pool size for -exp hub")
	hubHours := flag.Int("hub-hours", 2, "replayed stream hours per home for -exp hub")
	hubJSON := flag.String("hubjson", "BENCH_hub.json", "write the -exp hub result to this JSON file (empty = off)")
	recHours := flag.Int("recovery-hours", 2, "replayed stream hours for -exp recovery")
	recJSON := flag.String("recoveryjson", "BENCH_recovery.json", "write the -exp recovery result to this JSON file (empty = off)")
	clusterNodes := flag.Int("cluster-nodes", 3, "federated hub nodes for -exp cluster (the last one is killed mid-stream)")
	clusterHomes := flag.Int("cluster-homes", 6, "tenants spread across the cluster for -exp cluster")
	clusterHours := flag.Int("cluster-hours", 2, "replayed stream hours per home for -exp cluster")
	clusterJSON := flag.String("clusterjson", "BENCH_cluster.json", "write the -exp cluster result to this JSON file (empty = off)")
	driftDays := flag.Int("drift-days", 0, "days of drifted behaviour for -exp drift (0 = bench default)")
	driftExtra := flag.Int("drift-extra", 0, "new activities the residents adopt for -exp drift (0 = bench default)")
	driftAdmit := flag.Int("drift-admit", 0, "adapter admission threshold for -exp drift (0 = bench default)")
	driftJSON := flag.String("driftjson", "BENCH_drift.json", "write the -exp drift result to this JSON file (empty = off)")
	timingDelay := flag.Int("timing-delay", 0, "hold windows per delayed trigger for -exp timing (0 = bench default)")
	timingTrials := flag.Int("timing-trials", 0, "fault trials for -exp timing (0 = bench default)")
	timingJSON := flag.String("timingjson", "BENCH_timing.json", "write the -exp timing result to this JSON file (empty = off)")
	scenarioTrials := flag.Int("scenario-trials", 0, "trials per scenario for -exp scenarios (0 = bench default)")
	scenarioTrain := flag.Int("scenario-train", 0, "training hours for -exp scenarios (0 = bench default)")
	scenariosJSON := flag.String("scenariosjson", "BENCH_scenarios.json", "write the -exp scenarios result to this JSON file (empty = off)")
	flag.Parse()

	specs, err := selectSpecs(*dsFlag)
	if err != nil {
		return err
	}
	proto := eval.DefaultProtocol()
	proto.Trials = *trials
	proto.Seed = *seed
	// One shared registry across all datasets and workers; its snapshot
	// lands in the benchjson file next to the timings.
	tel := telemetry.NewRegistry()
	proto.Telemetry = tel

	emit := func(t *report.Table) error {
		if *csv {
			return t.CSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	}

	switch *exp {
	case "datasets":
		return emit(report.Datasets(specs))
	case "all", "accuracy", "latency", "checks", "degree", "compute", "ratio", "fig5.1a", "fig5.1b", "fig5.2", "table5.1", "table5.2", "fig5.3", "fig5.4":
		if *exp == "all" {
			if err := emit(report.Datasets(specs)); err != nil {
				return err
			}
		}
		wallStart := time.Now()
		results, err := evaluate(specs, *seed, proto, *workers)
		if err != nil {
			return err
		}
		if err := writeBenchJSON(*benchJSON, results, *workers, time.Since(wallStart), tel); err != nil {
			return err
		}
		tables := map[string]*report.Table{
			"accuracy": report.Accuracy(results),
			"latency":  report.Latency(results),
			"checks":   report.CheckLatency(results),
			"degree":   report.Degree(results),
			"compute":  report.ComputeTime(results),
			"ratio":    report.DetectionRatio(results),
		}
		alias := map[string]string{
			"fig5.1a": "accuracy", "fig5.1b": "accuracy", "fig5.2": "latency",
			"table5.1": "checks", "table5.2": "degree", "fig5.3": "compute",
			"fig5.4": "ratio",
		}
		if *exp == "all" {
			for _, k := range []string{"accuracy", "latency", "checks", "degree", "compute", "ratio"} {
				if err := emit(tables[k]); err != nil {
					return err
				}
			}
			return nil
		}
		key := *exp
		if a, ok := alias[key]; ok {
			key = a
		}
		return emit(tables[key])
	case "hub":
		return runHubBench(eval.HubBench{
			Homes:  *hubHomes,
			Shards: *hubShards,
			Hours:  *hubHours,
			Seed:   *seed,
		}, *hubJSON)
	case "recovery":
		return runRecoveryBench(eval.RecoveryBench{
			Hours: *recHours,
			Seed:  *seed,
		}, *recJSON)
	case "cluster":
		return runClusterBench(eval.ClusterBench{
			Nodes: *clusterNodes,
			Homes: *clusterHomes,
			Hours: *clusterHours,
			Seed:  *seed,
		}, *clusterJSON)
	case "drift":
		return runDriftBench(eval.DriftBench{
			DriftDays:       *driftDays,
			ExtraActivities: *driftExtra,
			AdmitAfter:      *driftAdmit,
		}, *driftJSON)
	case "timing":
		return runTimingBench(eval.TimingBench{
			DelayWindows: *timingDelay,
			Trials:       *timingTrials,
		}, *timingJSON)
	case "scenarios":
		return runScenarioBench(eval.ScenarioBench{
			TrainHours: *scenarioTrain,
			Trials:     *scenarioTrials,
		}, *scenariosJSON)
	case "actuators":
		return runActuators(specs, *seed, proto, *workers, emit)
	case "multifault":
		return runMultiFault(specs, *seed, proto, emit)
	case "ablations":
		return runAblations(*seed, proto, emit)
	case "baselines":
		return runBaselines(specs, *seed, proto, emit)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

func selectSpecs(names string) ([]simhome.Spec, error) {
	if names == "" {
		return simhome.AllSpecs(), nil
	}
	var out []simhome.Spec
	for _, n := range strings.Split(names, ",") {
		s, err := simhome.SpecByName(strings.TrimSpace(n))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func evaluate(specs []simhome.Spec, seed int64, proto eval.Protocol, workers int) ([]*eval.DatasetResult, error) {
	return eval.EvaluateAll(specs, seed, proto, workers, func(name string) {
		fmt.Fprintf(os.Stderr, "evaluating %s...\n", name)
	})
}

// benchJSON is the perf-trajectory record dice-eval drops after a run, so
// successive changes to the hot path can be compared without re-deriving
// numbers from logs.
type benchJSON struct {
	Timestamp   string             `json:"timestamp"`
	Workers     int                `json:"workers"`
	WallClockMS float64            `json:"wall_clock_ms"`
	Datasets    []datasetBenchJSON `json:"datasets"`
	// Metrics is the telemetry registry snapshot aggregated across every
	// dataset and worker: the same dice_* series a live gateway serves on
	// /metrics, here as a flat name -> value map.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type datasetBenchJSON struct {
	Name       string  `json:"name"`
	NumSensors int     `json:"num_sensors"`
	NumGroups  int     `json:"num_groups"`
	TrainMS    float64 `json:"train_ms"`
	EvalMS     float64 `json:"eval_ms"`
	// Per-window stage means in nanoseconds (Fig 5.3's quantities).
	CorrelationNS float64 `json:"correlation_ns_per_window"`
	TransitionNS  float64 `json:"transition_ns_per_window"`
	IdentifyNS    float64 `json:"identify_ns_per_window"`
}

func writeBenchJSON(path string, results []*eval.DatasetResult, workers int, wall time.Duration, tel *telemetry.Registry) error {
	if path == "" {
		return nil
	}
	out := benchJSON{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Workers:     workers,
		WallClockMS: float64(wall.Microseconds()) / 1000,
		Metrics:     tel.SnapshotMap(),
	}
	for _, r := range results {
		out.Datasets = append(out.Datasets, datasetBenchJSON{
			Name:          r.Name,
			NumSensors:    r.NumSensors,
			NumGroups:     r.NumGroups,
			TrainMS:       float64(r.TrainTime.Microseconds()) / 1000,
			EvalMS:        float64(r.EvalTime.Microseconds()) / 1000,
			CorrelationNS: float64(r.CorrelationCheckTime.Nanoseconds()),
			TransitionNS:  float64(r.TransitionCheckTime.Nanoseconds()),
			IdentifyNS:    float64(r.IdentifyTime.Nanoseconds()),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runHubBench measures multi-tenant throughput: M homes replayed
// concurrently through one hub, per-shard ops, total events/sec. The
// result lands in BENCH_hub.json next to BENCH_eval.json.
func runHubBench(o eval.HubBench, jsonPath string) error {
	res, err := eval.RunHubBench(o)
	if err != nil {
		return err
	}
	fmt.Printf("hub bench: %d homes x %dh on %d shards\n", res.Homes, res.Hours, res.Shards)
	fmt.Printf("  train   %8.1f ms (shared context)\n", res.TrainMS)
	fmt.Printf("  replay  %8.1f ms  (%d events, %d windows, %d alerts; binary batches of %d)\n",
		res.ReplayMS, res.Events, res.Windows, res.Alerts, res.BatchSize)
	fmt.Printf("  rate    %8.0f events/sec  (JSON baseline %8.0f, speedup %.2fx, bit-identical=%v)\n",
		res.EventsPerSec, res.JSONEventsPerSec, res.Speedup, res.BitIdentical)
	for _, s := range res.PerShard {
		fmt.Printf("  shard %d %8d ops, %d shed\n", s.Shard, s.Ops, s.Shed)
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write hub bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runClusterBench federates N in-process hub nodes, replays every home's
// stream through them while live-migrating one tenant and killing one
// node, and lands the throughput/recovery numbers in BENCH_cluster.json.
func runClusterBench(o eval.ClusterBench, jsonPath string) error {
	res, err := eval.RunClusterBench(o)
	if err != nil {
		return err
	}
	fmt.Printf("cluster bench: %d homes x %dh across %d nodes (one killed, one migration)\n",
		res.Homes, res.Hours, res.Nodes)
	fmt.Printf("  train     %8.1f ms (shared context)\n", res.TrainMS)
	fmt.Printf("  replay    %8.1f ms  (%d events, %d alerts; batches of %d over HTTP)\n",
		res.WallClockMS, res.Events, res.Alerts, res.BatchSize)
	fmt.Printf("  rate      %8.0f events/sec  (solo %8.0f, efficiency %.3f, bit-identical=%v)\n",
		res.EventsPerSec, res.SoloEventsPerSec, res.Efficiency, res.BitIdentical)
	fmt.Printf("  migration %8.1f ms drain-and-handoff\n", res.MigrationMS)
	fmt.Printf("  fail-over %8.1f ms to re-adopt the dead node's homes (%.0f ms silence budget)\n",
		res.FailoverRecoverMS, res.FailoverDetectMS)
	fmt.Printf("  counters  %d handoffs, %d failovers, %d replacements, %d retries\n",
		res.Handoffs, res.Failovers, res.Replacements, res.Retries)
	if !res.BitIdentical {
		return fmt.Errorf("cluster replay diverged from solo gateways")
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write cluster bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runRecoveryBench prices WAL durability per fsync policy and times a
// checkpoint+WAL crash recovery. The result lands in BENCH_recovery.json.
func runRecoveryBench(o eval.RecoveryBench, jsonPath string) error {
	res, err := eval.RunRecoveryBench(o)
	if err != nil {
		return err
	}
	fmt.Printf("recovery bench: %dh stream, %d events\n", res.Hours, res.Events)
	for _, p := range res.Policies {
		fmt.Printf("  fsync=%-6s %8.1f ms replay  %8.0f events/sec  (+%.1f%%)\n",
			p.Policy, p.ReplayMS, p.EventsPerSec, p.OverheadPct)
	}
	fmt.Printf("  crash at %.0f%% checkpoint: %d WAL records replayed in %.1f ms (%8.0f events/sec), bit-identical=%v\n",
		100*res.CheckpointAt, res.ReplayedRecords, res.RecoveryMS, res.RecoveredPerSec, res.BitIdentical)
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write recovery bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runDriftBench replays a seeded behaviour drift through a static and an
// adaptive detector and scores false alarms plus post-adaptation fault
// detection. The result lands in BENCH_drift.json.
func runDriftBench(o eval.DriftBench, jsonPath string) error {
	res, benchErr := eval.RunDriftBench(o)
	if res != nil {
		fmt.Printf("drift bench: %dh training, %d drift days (+%d activities), %d fault trials\n",
			res.TrainHours, res.DriftDays, res.ExtraActivities, res.Trials)
		fmt.Printf("  static   %3d false alarms, %4d violation windows, %d/%d faults missed  (%.1f ms replay)\n",
			res.Static.FalseAlarms, res.Static.ViolationWindows, res.Static.MissedFaults, res.Trials, res.Static.ReplayMS)
		fmt.Printf("  adaptive %3d false alarms, %4d violation windows, %d/%d faults missed  (%.1f ms replay)\n",
			res.Adaptive.FalseAlarms, res.Adaptive.ViolationWindows, res.Adaptive.MissedFaults, res.Trials, res.Adaptive.ReplayMS)
		fmt.Printf("  adapted  epoch %d: %d->%d groups (+%d admitted), %d edges admitted, %d decayed; %.1f%% fewer false alarms\n",
			res.FinalEpoch, res.BaseGroups, res.AdaptedGroups, res.GroupsAdmitted,
			res.EdgesAdmitted, res.DecayedEdges, res.FalseAlarmReductionPct)
	}
	if benchErr != nil {
		return benchErr
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write drift bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runTimingBench replays stream-stretch timing faults through a
// structural-only and a timing-aware detector and scores the timing check's
// added detection against its clean-replay false alarms. The result lands
// in BENCH_timing.json.
func runTimingBench(o eval.TimingBench, jsonPath string) error {
	res, benchErr := eval.RunTimingBench(o)
	if res != nil {
		fmt.Printf("timing bench: %dh training, %dh clean replay, %d trials (delay %d windows, %d groups)\n",
			res.TrainHours, res.CleanHours, res.Trials, res.DelayWindows, res.Groups)
		fmt.Printf("  structural %d/%d trials caught, %d clean false alarms (%d violation windows)\n",
			res.Structural.Caught, res.Trials, res.Structural.CleanFalseAlarms, res.Structural.CleanViolationWindows)
		fmt.Printf("  timing     %d/%d trials caught, %d clean false alarms (%d violation windows, %d timing-flagged)\n",
			res.Timing.Caught, res.Trials, res.Timing.CleanFalseAlarms, res.Timing.CleanViolationWindows, res.CleanTimingFlags)
		fmt.Printf("  headline   %d/%d structurally-missed faults caught by the timing check (%.0f%%), %d cause=timing detections, %+d extra false alarms\n",
			res.TimingCaughtOfMissed, res.StructuralMissed, res.CatchPct, res.TimingCauseDetections, res.ExtraFalseAlarms)
	}
	if benchErr != nil {
		return benchErr
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write timing bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

// runScenarioBench grades the multi-fault detector on the adversarial
// scenario library and writes the per-scenario table to
// BENCH_scenarios.json.
func runScenarioBench(o eval.ScenarioBench, jsonPath string) error {
	res, benchErr := eval.RunScenarioBench(o)
	if res != nil {
		fmt.Printf("scenario bench: %dh training, %dh clean replay, %d trials/scenario (%d groups)\n",
			res.TrainHours, res.CleanHours, res.Trials, res.Groups)
		fmt.Printf("  clean replay: %d false alarms\n", res.CleanFalseAlarms)
		for _, s := range res.Scenarios {
			switch {
			case s.Benign:
				fmt.Printf("  %-20s benign, %d/%d trials alert-free\n",
					s.Name, s.Trials-minInt(s.FalseAlarms, s.Trials), s.Trials)
			case s.DetectOnly:
				fmt.Printf("  %-20s detected %d/%d (%.0f%%), detect-only\n",
					s.Name, s.Detected, s.Trials, s.DetectionPct)
			default:
				fmt.Printf("  %-20s detected %d/%d (%.0f%%), ident P %.2f R %.2f, all-named %d/%d (%.0f%%)\n",
					s.Name, s.Detected, s.Trials, s.DetectionPct,
					s.IdentPrecision, s.IdentRecall, s.AllNamed, s.Trials, s.AllNamedPct)
			}
		}
		fmt.Printf("  floors: benign false alarms %d (want 0), storm-2 all-named %.0f%% (want >= 80%%)\n",
			res.BenignFalseAlarms, res.Storm2AllNamedPct)
	}
	if benchErr != nil {
		return benchErr
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write scenario bench json: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runActuators reproduces §5.1.3: actuator faults on the D_* datasets (the
// only ones with actuators).
func runActuators(specs []simhome.Spec, seed int64, proto eval.Protocol, workers int, emit func(*report.Table) error) error {
	var withActs []simhome.Spec
	for _, s := range specs {
		for _, d := range s.Devices {
			if d.Kind == 3 {
				withActs = append(withActs, s)
				break
			}
		}
	}
	if len(withActs) == 0 {
		return fmt.Errorf("no selected dataset has actuators (use the D_* datasets)")
	}
	results, err := evaluate(withActs, seed, eval.ActuatorProtocol(proto), workers)
	if err != nil {
		return err
	}
	t := report.Accuracy(results)
	t.Title = "§5.1.3 — Actuator Fault Accuracy (D_* datasets)"
	return emit(t)
}

// runMultiFault reproduces the §VI multi-fault discussion: 1-3 simultaneous
// faults with numThre=3.
func runMultiFault(specs []simhome.Spec, seed int64, proto eval.Protocol, emit func(*report.Table) error) error {
	results := make([]*eval.DatasetResult, 0, len(specs))
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "multifault %s...\n", s.Name)
		// The paper randomly picks 1-3 faults; we rotate the count across
		// trials deterministically by splitting trials into three batches.
		var pooled *eval.DatasetResult
		for n := 1; n <= 3; n++ {
			p := eval.MultiFaultProtocol(proto, 3)
			p.FaultsPerSegment = n
			p.Trials = proto.Trials / 3
			if p.Trials == 0 {
				p.Trials = 1
			}
			r, err := eval.EvaluateDataset(s, seed, p)
			if err != nil {
				return err
			}
			if pooled == nil {
				pooled = r
			} else {
				pooled.Detection.TP += r.Detection.TP
				pooled.Detection.FP += r.Detection.FP
				pooled.Detection.FN += r.Detection.FN
				pooled.Identification.TP += r.Identification.TP
				pooled.Identification.FP += r.Identification.FP
				pooled.Identification.FN += r.Identification.FN
			}
		}
		results = append(results, pooled)
	}
	t := report.Accuracy(results)
	t.Title = "§VI — Multi-Fault (1-3 simultaneous, numThre=3)"
	return emit(t)
}

// runAblations reproduces the §VI parameter study on D_houseA: shorter
// precomputation, shorter segments, and longer state-set durations.
func runAblations(seed int64, proto eval.Protocol, emit func(*report.Table) error) error {
	spec := simhome.SpecDHouseA()
	variants := []struct {
		label string
		mod   func(eval.Protocol) eval.Protocol
	}{
		{"baseline (300h, 6h seg, 1m)", func(p eval.Protocol) eval.Protocol { return p }},
		{"precompute 150h", func(p eval.Protocol) eval.Protocol { p.PrecomputeHours = 150; return p }},
		{"segment 3h", func(p eval.Protocol) eval.Protocol { p.SegmentHours = 3; return p }},
		{"duration 2m", func(p eval.Protocol) eval.Protocol { p.WindowsPerAggregate = 2; return p }},
		{"duration 5m", func(p eval.Protocol) eval.Protocol { p.WindowsPerAggregate = 5; return p }},
	}
	var results []*eval.AblationResult
	for _, v := range variants {
		fmt.Fprintf(os.Stderr, "ablation %q...\n", v.label)
		r, err := eval.RunAblation(spec, seed, v.mod(proto), v.label)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	return emit(report.Ablations(results))
}

// runBaselines quantifies Table 2.1: DICE against the prior-art-style
// baselines on identical data.
func runBaselines(specs []simhome.Spec, seed int64, proto eval.Protocol, emit func(*report.Table) error) error {
	t := &report.Table{
		Title:   "Table 2.1 (quantified) — DICE vs baselines",
		Headers: []string{"dataset", "detector", "det-precision", "det-recall", "mean-detect-min"},
	}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "baselines %s...\n", s.Name)
		rows, err := baseline.Compare(s, seed, baseline.CompareConfig{
			PrecomputeHours: proto.PrecomputeHours,
			SegmentHours:    proto.SegmentHours,
			Trials:          proto.Trials,
			Seed:            proto.Seed,
		})
		if err != nil {
			return err
		}
		for _, row := range rows {
			t.AddRow(s.Name, row.Detector,
				fmt.Sprintf("%.1f%%", 100*row.Precision),
				fmt.Sprintf("%.1f%%", 100*row.Recall),
				fmt.Sprintf("%.1f", row.MeanDetectMinutes))
		}
	}
	return emit(t)
}
