// Command dice-benchdiff is the CI perf gate: it compares a freshly
// generated benchmark JSON against the committed baseline and exits
// non-zero on a regression beyond the tolerance.
//
// Usage:
//
//	dice-benchdiff -mode hub     -baseline BENCH_hub.json     -fresh /tmp/fresh.json [-tolerance 0.15]
//	dice-benchdiff -mode eval    -baseline BENCH_eval.json    -fresh /tmp/fresh.json [-tolerance 0.15]
//	dice-benchdiff -mode cluster -baseline BENCH_cluster.json -fresh /tmp/fresh.json [-tolerance 0.15]
//	dice-benchdiff -mode drift   -baseline BENCH_drift.json   -fresh /tmp/fresh.json [-tolerance 0.15]
//	dice-benchdiff -mode timing  -baseline BENCH_timing.json  -fresh /tmp/fresh.json [-tolerance 0.15]
//	dice-benchdiff -mode scenarios -baseline BENCH_scenarios.json -fresh /tmp/fresh.json [-tolerance 0.15]
//
// A baseline that does not exist yet is not a failure: a benchmark
// introduced in the same change has a fresh file but no committed
// baseline, so the gate prints a notice and passes (the next commit of
// the fresh file becomes the baseline). A missing fresh file still fails.
//
// Raw events/sec depends on the machine, so the gate compares
// machine-normalized ratios that cancel hardware speed out of the
// comparison:
//
//   - hub: the binary-path speedup (events_per_sec / json_events_per_sec).
//     Both passes run in the same process on the same machine, so their
//     ratio moves only when the relative cost of the binary ingest path
//     changes — which is exactly the regression the gate watches for. The
//     fresh run must also report bit_identical detection output.
//   - eval: replay wall-clock normalized by training wall-clock
//     (wall_clock_ms / Σ train_ms). Training is a pure-compute yardstick
//     that rescales with the machine; the ratio tracks the evaluation hot
//     path relative to it.
//   - cluster: federation efficiency (events_per_sec / solo_events_per_sec).
//     Both runs replay the same streams in the same process, so the ratio
//     isolates the overhead of HTTP routing, proxying, and migration from
//     machine speed. The fresh run must also report bit_identical — the
//     cluster reproduced the solo gateway's output exactly through a
//     migration and a fail-over.
//   - drift: the false-alarm reduction (1 - adaptive/static false alarms)
//     the adapter achieves on the drifted stream. The quantity is a count
//     ratio from a deterministic replay — no hardware term at all — so a
//     drop beyond the tolerance means the adaptation logic itself got
//     worse. A fresh run in which the adaptive arm misses any injected
//     fault, or fails to beat the static arm outright, fails regardless of
//     tolerance.
//   - timing: the share of structurally-missed timing faults the timing
//     check catches (catch_pct) — a count ratio from a deterministic
//     replay, no hardware term. Correctness floors are absolute: the fresh
//     run must catch at least 80% and must report zero timing-flagged
//     clean windows and zero extra false alarms.
//   - scenarios: the adversarial scenario library. Floors are absolute
//     (zero benign/clean false alarms; the two-fault storm names every
//     injected device in at least 80% of trials); the tolerance applies
//     to the storm-2 all-named rate against the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// hubBench mirrors the BENCH_hub.json fields the gate reads.
type hubBench struct {
	EventsPerSec     float64 `json:"events_per_sec"`
	JSONEventsPerSec float64 `json:"json_events_per_sec"`
	Speedup          float64 `json:"speedup"`
	BitIdentical     bool    `json:"bit_identical"`
}

// evalBench mirrors the BENCH_eval.json fields the gate reads.
type evalBench struct {
	WallClockMS float64 `json:"wall_clock_ms"`
	Datasets    []struct {
		TrainMS float64 `json:"train_ms"`
	} `json:"datasets"`
}

// clusterBench mirrors the BENCH_cluster.json fields the gate reads.
type clusterBench struct {
	EventsPerSec     float64 `json:"events_per_sec"`
	SoloEventsPerSec float64 `json:"solo_events_per_sec"`
	Efficiency       float64 `json:"efficiency"`
	BitIdentical     bool    `json:"bit_identical"`
}

// driftBench mirrors the BENCH_drift.json fields the gate reads.
type driftBench struct {
	Static struct {
		FalseAlarms int `json:"false_alarms"`
	} `json:"static"`
	Adaptive struct {
		FalseAlarms  int `json:"false_alarms"`
		MissedFaults int `json:"missed_faults"`
	} `json:"adaptive"`
	ReductionPct float64 `json:"false_alarm_reduction_pct"`
}

// timingBench mirrors the BENCH_timing.json fields the gate reads.
type timingBench struct {
	CatchPct             float64 `json:"catch_pct"`
	StructuralMissed     int     `json:"structural_missed"`
	TimingCaughtOfMissed int     `json:"timing_caught_of_missed"`
	CleanTimingFlags     int     `json:"clean_timing_flags"`
	ExtraFalseAlarms     int     `json:"extra_false_alarms"`
}

// scenariosBench mirrors the BENCH_scenarios.json fields the gate reads.
type scenariosBench struct {
	CleanFalseAlarms  int     `json:"clean_false_alarms"`
	BenignFalseAlarms int     `json:"benign_false_alarms"`
	Storm2AllNamedPct float64 `json:"storm2_all_named_pct"`
	Scenarios         []struct {
		Name        string `json:"name"`
		Benign      bool   `json:"benign"`
		Trials      int    `json:"trials"`
		Detected    int    `json:"detected"`
		FalseAlarms int    `json:"false_alarms"`
	} `json:"scenarios"`
}

func main() {
	mode := flag.String("mode", "hub", "which benchmark schema to compare: hub or eval")
	baseline := flag.String("baseline", "", "committed baseline JSON")
	fresh := flag.String("fresh", "", "freshly generated JSON")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	flag.Parse()
	if err := run(*mode, *baseline, *fresh, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "dice-benchdiff:", err)
		os.Exit(1)
	}
}

func run(mode, baseline, fresh string, tolerance float64) error {
	if baseline == "" || fresh == "" {
		return fmt.Errorf("both -baseline and -fresh are required")
	}
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("tolerance %v out of range [0, 1)", tolerance)
	}
	if _, err := os.Stat(fresh); err != nil {
		return fmt.Errorf("fresh benchmark missing: %w", err)
	}
	if _, err := os.Stat(baseline); os.IsNotExist(err) {
		// A benchmark introduced in this change has no committed baseline
		// yet; committing the fresh file creates one for the next run.
		fmt.Printf("%s perf gate: no baseline at %s yet, skipping comparison (commit the fresh file to create one)\n", mode, baseline)
		return nil
	}
	switch mode {
	case "hub":
		return diffHub(baseline, fresh, tolerance)
	case "eval":
		return diffEval(baseline, fresh, tolerance)
	case "cluster":
		return diffCluster(baseline, fresh, tolerance)
	case "drift":
		return diffDrift(baseline, fresh, tolerance)
	case "timing":
		return diffTiming(baseline, fresh, tolerance)
	case "scenarios":
		return diffScenarios(baseline, fresh, tolerance)
	default:
		return fmt.Errorf("unknown mode %q (want hub, eval, cluster, drift, timing, or scenarios)", mode)
	}
}

func load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	return nil
}

// diffHub gates on the binary/JSON speedup ratio: higher is better, and a
// fresh ratio more than tolerance below the baseline fails.
func diffHub(baseline, fresh string, tolerance float64) error {
	var base, cur hubBench
	if err := load(baseline, &base); err != nil {
		return err
	}
	if err := load(fresh, &cur); err != nil {
		return err
	}
	if base.Speedup <= 0 || cur.Speedup <= 0 {
		return fmt.Errorf("speedup missing: baseline=%v fresh=%v (regenerate with dice-eval -exp hub)", base.Speedup, cur.Speedup)
	}
	if !cur.BitIdentical {
		return fmt.Errorf("fresh run reports bit_identical=false: binary and JSON wire paths diverged")
	}
	floor := base.Speedup * (1 - tolerance)
	fmt.Printf("hub perf gate: baseline speedup %.2fx, fresh %.2fx (floor %.2fx, raw %s events/sec fresh vs %s baseline)\n",
		base.Speedup, cur.Speedup, floor, fmtRate(cur.EventsPerSec), fmtRate(base.EventsPerSec))
	if cur.Speedup < floor {
		return fmt.Errorf("binary ingest speedup regressed: %.2fx < %.2fx (baseline %.2fx - %d%%)",
			cur.Speedup, floor, base.Speedup, int(tolerance*100))
	}
	return nil
}

// diffEval gates on wall-clock normalized by training time: lower is
// better, and a fresh ratio more than tolerance above the baseline fails.
func diffEval(baseline, fresh string, tolerance float64) error {
	var base, cur evalBench
	if err := load(baseline, &base); err != nil {
		return err
	}
	if err := load(fresh, &cur); err != nil {
		return err
	}
	baseRatio, err := evalRatio(base, baseline)
	if err != nil {
		return err
	}
	curRatio, err := evalRatio(cur, fresh)
	if err != nil {
		return err
	}
	ceil := baseRatio * (1 + tolerance)
	fmt.Printf("eval perf gate: baseline wall/train ratio %.3f, fresh %.3f (ceiling %.3f)\n", baseRatio, curRatio, ceil)
	if curRatio > ceil {
		return fmt.Errorf("evaluation wall-clock regressed: ratio %.3f > %.3f (baseline %.3f + %d%%)",
			curRatio, ceil, baseRatio, int(tolerance*100))
	}
	return nil
}

// diffCluster gates on federation efficiency (cluster throughput over solo
// throughput, same process): higher is better, and a fresh ratio more than
// tolerance below the baseline fails. Bit-identity is non-negotiable.
func diffCluster(baseline, fresh string, tolerance float64) error {
	var base, cur clusterBench
	if err := load(baseline, &base); err != nil {
		return err
	}
	if err := load(fresh, &cur); err != nil {
		return err
	}
	if base.Efficiency <= 0 || cur.Efficiency <= 0 {
		return fmt.Errorf("efficiency missing: baseline=%v fresh=%v (regenerate with dice-eval -exp cluster)", base.Efficiency, cur.Efficiency)
	}
	if !cur.BitIdentical {
		return fmt.Errorf("fresh run reports bit_identical=false: cluster output diverged from solo replay")
	}
	floor := base.Efficiency * (1 - tolerance)
	fmt.Printf("cluster perf gate: baseline efficiency %.3f, fresh %.3f (floor %.3f, raw %s events/sec fresh vs %s solo)\n",
		base.Efficiency, cur.Efficiency, floor, fmtRate(cur.EventsPerSec), fmtRate(cur.SoloEventsPerSec))
	if cur.Efficiency < floor {
		return fmt.Errorf("cluster efficiency regressed: %.3f < %.3f (baseline %.3f - %d%%)",
			cur.Efficiency, floor, base.Efficiency, int(tolerance*100))
	}
	return nil
}

// diffDrift gates on the adapter's false-alarm reduction: higher is
// better, and a fresh reduction more than tolerance below the baseline
// fails. Correctness floors are absolute: the adaptive arm must miss zero
// injected faults and must beat the static arm's false-alarm count.
func diffDrift(baseline, fresh string, tolerance float64) error {
	var base, cur driftBench
	if err := load(baseline, &base); err != nil {
		return err
	}
	if err := load(fresh, &cur); err != nil {
		return err
	}
	if cur.Adaptive.MissedFaults > 0 {
		return fmt.Errorf("adaptive arm missed %d injected faults: adaptation taught the detector to excuse faults", cur.Adaptive.MissedFaults)
	}
	if cur.Adaptive.FalseAlarms >= cur.Static.FalseAlarms {
		return fmt.Errorf("adaptation no longer reduces false alarms: adaptive %d >= static %d",
			cur.Adaptive.FalseAlarms, cur.Static.FalseAlarms)
	}
	if base.ReductionPct <= 0 || cur.ReductionPct <= 0 {
		return fmt.Errorf("false_alarm_reduction_pct missing: baseline=%v fresh=%v (regenerate with dice-eval -exp drift)",
			base.ReductionPct, cur.ReductionPct)
	}
	floor := base.ReductionPct * (1 - tolerance)
	fmt.Printf("drift gate: baseline false-alarm reduction %.1f%%, fresh %.1f%% (floor %.1f%%, adaptive %d vs static %d alarms, 0 missed faults)\n",
		base.ReductionPct, cur.ReductionPct, floor, cur.Adaptive.FalseAlarms, cur.Static.FalseAlarms)
	if cur.ReductionPct < floor {
		return fmt.Errorf("false-alarm reduction regressed: %.1f%% < %.1f%% (baseline %.1f%% - %d%%)",
			cur.ReductionPct, floor, base.ReductionPct, int(tolerance*100))
	}
	return nil
}

// diffTiming gates on the timing check's catch rate over structurally
// missed faults: higher is better, and a fresh rate more than tolerance
// below the baseline fails. Correctness floors are absolute: at least 80%
// caught, zero timing-flagged clean windows, zero extra false alarms, and
// a non-vacuous structural miss count.
func diffTiming(baseline, fresh string, tolerance float64) error {
	var base, cur timingBench
	if err := load(baseline, &base); err != nil {
		return err
	}
	if err := load(fresh, &cur); err != nil {
		return err
	}
	if cur.CleanTimingFlags > 0 {
		return fmt.Errorf("timing check flagged %d clean windows: the check now raises false alarms", cur.CleanTimingFlags)
	}
	if cur.ExtraFalseAlarms > 0 {
		return fmt.Errorf("timing arm raised %d extra clean false alarms", cur.ExtraFalseAlarms)
	}
	if cur.StructuralMissed == 0 {
		return fmt.Errorf("structural arm missed nothing: the benchmark is vacuous (regenerate with dice-eval -exp timing)")
	}
	if cur.CatchPct < 80 {
		return fmt.Errorf("timing check caught %.0f%% of structurally missed faults, floor is 80%%", cur.CatchPct)
	}
	if base.CatchPct <= 0 {
		return fmt.Errorf("catch_pct missing from baseline (regenerate with dice-eval -exp timing)")
	}
	floor := base.CatchPct * (1 - tolerance)
	fmt.Printf("timing gate: baseline catch %.0f%%, fresh %.0f%% (floor %.0f%%, %d/%d structurally-missed faults caught, 0 clean flags)\n",
		base.CatchPct, cur.CatchPct, floor, cur.TimingCaughtOfMissed, cur.StructuralMissed)
	if cur.CatchPct < floor {
		return fmt.Errorf("timing catch rate regressed: %.0f%% < %.0f%% (baseline %.0f%% - %d%%)",
			cur.CatchPct, floor, base.CatchPct, int(tolerance*100))
	}
	return nil
}

// diffScenarios gates on the scenario library's accuracy floors.
// Correctness floors are absolute: zero clean and benign false alarms, and
// the two-fault storm's alerts name every injected device in at least 80%
// of trials. The tolerance additionally holds the storm-2 all-named rate
// near the baseline so a weaker identifier cannot coast down to the floor
// unnoticed.
func diffScenarios(baseline, fresh string, tolerance float64) error {
	var base, cur scenariosBench
	if err := load(baseline, &base); err != nil {
		return err
	}
	if err := load(fresh, &cur); err != nil {
		return err
	}
	if cur.CleanFalseAlarms > 0 {
		return fmt.Errorf("clean replay raised %d alerts: the detector false-alarms on fault-free data", cur.CleanFalseAlarms)
	}
	if cur.BenignFalseAlarms > 0 {
		return fmt.Errorf("benign scenarios raised %d alerts: occupancy changes must not alert", cur.BenignFalseAlarms)
	}
	if cur.Storm2AllNamedPct < 80 {
		return fmt.Errorf("storm-2 named every injected device in %.0f%% of trials, floor is 80%%", cur.Storm2AllNamedPct)
	}
	if len(cur.Scenarios) == 0 {
		return fmt.Errorf("fresh run reports no scenarios (regenerate with dice-eval -exp scenarios)")
	}
	if base.Storm2AllNamedPct <= 0 {
		return fmt.Errorf("storm2_all_named_pct missing from baseline (regenerate with dice-eval -exp scenarios)")
	}
	floor := base.Storm2AllNamedPct * (1 - tolerance)
	fmt.Printf("scenarios gate: baseline storm-2 all-named %.0f%%, fresh %.0f%% (floor %.0f%%, %d scenarios, 0 benign false alarms)\n",
		base.Storm2AllNamedPct, cur.Storm2AllNamedPct, floor, len(cur.Scenarios))
	if cur.Storm2AllNamedPct < floor {
		return fmt.Errorf("storm-2 all-named rate regressed: %.0f%% < %.0f%% (baseline %.0f%% - %d%%)",
			cur.Storm2AllNamedPct, floor, base.Storm2AllNamedPct, int(tolerance*100))
	}
	return nil
}

func evalRatio(b evalBench, path string) (float64, error) {
	var train float64
	for _, d := range b.Datasets {
		train += d.TrainMS
	}
	if train <= 0 || b.WallClockMS <= 0 {
		return 0, fmt.Errorf("%s: missing wall_clock_ms or train_ms (regenerate with dice-eval)", path)
	}
	return b.WallClockMS / train, nil
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
