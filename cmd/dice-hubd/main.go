// Command dice-hubd runs one node of a federated hub cluster. N nodes with
// identical -peers tables place homes by rendezvous hashing — no
// coordinator, no election — and serve device batches over HTTP
// (POST /cluster/ingest/<home>, DWB1 payloads). A report landing on the
// wrong node is proxied to the owner; a node death is detected by
// heartbeat and the dead node's homes are re-adopted by survivors from the
// shared checkpoint + WAL tree, bit-identical to an uninterrupted run.
//
// Usage (three nodes on one host sharing a state tree):
//
//	dice-hubd -node-id a -listen 127.0.0.1:7001 \
//	          -peers b=127.0.0.1:7002,c=127.0.0.1:7003 \
//	          -homes ./homes -checkpoint-dir ./state -wal-dir ./state
//	dice-hubd -node-id b -listen 127.0.0.1:7002 \
//	          -peers a=127.0.0.1:7001,c=127.0.0.1:7003 ...
//	dice-hubd -node-id c ...
//
// -homes points at a directory with one dataset+context subdirectory per
// home, exactly as for dice-gateway; every node loads the same catalog but
// only instantiates the homes it owns (or adopts). The node's /metrics
// merges every live peer's exposition with a node="<id>" label, and
// /cluster/tenants lists every tenant in the cluster with its host.
//
// For the fail-over guarantee the checkpoint and WAL directories must be
// on storage every node can reach (one machine, or a shared mount).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-hubd:", err)
		os.Exit(1)
	}
}

// homeDef is one catalog entry: its tenant ID, dataset dir, and context
// file (same on-disk layout dice-gateway's -homes uses).
type homeDef struct {
	name    string
	dataDir string
	ctxFile string
}

func discoverHomes(homesDir string) ([]homeDef, error) {
	entries, err := os.ReadDir(homesDir)
	if err != nil {
		return nil, err
	}
	var defs []homeDef
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(homesDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, dataset.ManifestName)); err != nil {
			continue // not a dataset directory
		}
		defs = append(defs, homeDef{
			name:    e.Name(),
			dataDir: dir,
			ctxFile: filepath.Join(dir, "context.json"),
		})
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("no home directories (with %s) under %s", dataset.ManifestName, homesDir)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].name < defs[j].name })
	return defs, nil
}

func loadContext(def homeDef) (*core.Context, error) {
	ds, err := dataset.LoadManifest(def.dataDir)
	if err != nil {
		return nil, err
	}
	cf, err := os.Open(def.ctxFile)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	cctx, err := core.LoadContext(cf, ds.Layout)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", def.ctxFile, err)
	}
	return cctx, nil
}

func parsePeers(spec string) (map[string]string, error) {
	peers := make(map[string]string)
	if spec == "" {
		return peers, nil
	}
	for _, part := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q, want id=host:port", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate peer id %q", id)
		}
		peers[id] = addr
	}
	return peers, nil
}

func run() error {
	nodeID := flag.String("node-id", "", "this node's cluster ID (required, unique across -peers)")
	listen := flag.String("listen", "127.0.0.1:7001", "TCP address for the cluster HTTP endpoint")
	peersSpec := flag.String("peers", "", "static peer table, id=host:port[,id=host:port...]")
	homesDir := flag.String("homes", "", "directory with one dataset+context subdirectory per home (required)")
	shards := flag.Int("shards", 4, "hub worker pool size; any count produces identical detection output")
	ckptDir := flag.String("checkpoint-dir", "", "shared directory for per-home checkpoint files")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second, "how often to persist checkpoints")
	walDir := flag.String("wal-dir", "", "shared directory for per-home write-ahead logs")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: always, batch, never")
	liveness := flag.Duration("liveness", 0, "silence threshold for fail-stop device alerts (0 disables)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "peer heartbeat interval")
	suspectAfter := flag.Duration("suspect-after", 2*time.Second, "heartbeat silence before a peer is suspected")
	deadAfter := flag.Duration("dead-after", 5*time.Second, "heartbeat silence before a peer is declared dead and failed over")
	retries := flag.Int("retries", 4, "inter-node call retries (exponential backoff + jitter)")
	backoff := flag.Duration("retry-backoff", 50*time.Millisecond, "base delay before the first inter-node retry")
	callTimeout := flag.Duration("call-timeout", 5*time.Second, "per-attempt timeout on inter-node calls")
	adapt := flag.Bool("adapt", false, "adapt each hosted home's context online (versioned snapshots, checkpoint-pinned; see /tenants/{home}/context)")
	admitAfter := flag.Int("admit-after", 0, "sightings before -adapt admits a new behaviour (0 = library default)")
	flag.Parse()

	if *nodeID == "" {
		return fmt.Errorf("-node-id is required")
	}
	if *homesDir == "" {
		return fmt.Errorf("-homes is required")
	}
	peers, err := parsePeers(*peersSpec)
	if err != nil {
		return err
	}

	defs, err := discoverHomes(*homesDir)
	if err != nil {
		return err
	}
	catalog := make([]string, 0, len(defs))
	byName := make(map[string]homeDef, len(defs))
	for _, def := range defs {
		catalog = append(catalog, def.name)
		byName[def.name] = def
	}
	// Contexts load lazily: a node only pays for the homes it actually
	// hosts, so adding nodes shrinks per-node startup work.
	resolver := func(home string) (*core.Context, []gateway.Option, error) {
		def, ok := byName[home]
		if !ok {
			return nil, nil, fmt.Errorf("home %q not in catalog", home)
		}
		cctx, err := loadContext(def)
		if err != nil {
			return nil, nil, err
		}
		opts := []gateway.Option{
			gateway.WithConfig(core.Config{}),
			gateway.WithLiveness(*liveness),
		}
		if *adapt {
			var aOpts []core.AdapterOption
			if *admitAfter > 0 {
				aOpts = append(aOpts, core.WithAdmitAfter(*admitAfter))
			}
			opts = append(opts, gateway.WithAdaptation(aOpts...))
		}
		return cctx, opts, nil
	}

	hubOpts := []hub.Option{hub.WithShards(*shards)}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		hubOpts = append(hubOpts,
			hub.WithCheckpointDir(*ckptDir),
			hub.WithCheckpointInterval(*ckptEvery))
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return err
		}
		hubOpts = append(hubOpts, hub.WithWALDir(*walDir), hub.WithWALSync(policy))
	}

	n, err := cluster.New(*nodeID,
		cluster.WithListen(*listen),
		cluster.WithPeers(peers),
		cluster.WithCatalog(catalog, resolver),
		cluster.WithHubOptions(hubOpts...),
		cluster.WithHeartbeat(*heartbeat, *suspectAfter, *deadAfter),
		cluster.WithRetry(*retries, *backoff),
		cluster.WithCallTimeout(*callTimeout),
	)
	if err != nil {
		return err
	}
	defer n.Close()

	if err := n.Start(); err != nil {
		return err
	}
	owned := cluster.Placement(catalog, sortedKeys(peers, *nodeID))[*nodeID]
	fmt.Printf("node %s on http://%s: %d peers, %d homes in catalog, %d placed here\n",
		*nodeID, n.Addr(), len(peers), len(catalog), len(owned))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Run owns alert delivery and periodic checkpoints for the local hub;
	// SIGINT/SIGTERM drain and write final checkpoints before Close.
	if err := n.Hub().Run(ctx, printAlert); err != nil {
		return err
	}
	fmt.Println("shutting down:")
	for _, home := range n.Hub().Homes() {
		if tn, ok := n.Hub().Tenant(home); ok {
			st := tn.Stats()
			fmt.Printf("  %-16s %d events, %d windows, %d violations, %d alerts\n",
				home, st.Events, st.Windows, st.Violations, st.Alerts)
		}
	}
	return n.Close()
}

func sortedKeys(peers map[string]string, self string) []string {
	out := []string{self}
	for id := range peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func printAlert(a hub.TenantAlert) {
	names := make([]string, 0, len(a.Devices))
	for _, d := range a.Devices {
		names = append(names, d.Name)
	}
	fmt.Printf("ALERT home=%s faulty=%s cause=%s detected@%s reported@%s\n",
		a.Home, strings.Join(names, ","), a.Cause, a.DetectedAt, a.ReportedAt)
}
