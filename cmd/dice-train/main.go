// Command dice-train runs DICE's precomputation phase over a dataset
// directory and writes the resulting context (groups + transition
// matrices) as JSON.
//
// Usage:
//
//	dice-train -data ./data/D_houseA -out context.json [-hours 300]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-train:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "", "dataset directory (required)")
	out := flag.String("out", "context.json", "output context file")
	hours := flag.Int("hours", 300, "precomputation prefix length in hours (0 = whole recording)")
	flag.Parse()

	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := dataset.Load(*dataDir)
	if err != nil {
		return err
	}
	obs, err := ds.Windows()
	if err != nil {
		return err
	}
	trainW := len(obs)
	if *hours > 0 && *hours*60 < trainW {
		trainW = *hours * 60
	}
	start := time.Now()
	ctx, err := core.TrainWindows(ds.Layout, time.Minute, obs[:trainW])
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := ctx.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trained on %d windows in %s: %d groups, correlation degree %.2f, G2G cells %d\n",
		trainW, time.Since(start).Round(time.Millisecond),
		ctx.NumGroups(), ctx.CorrelationDegree(), ctx.G2G().NumTransitions())
	fmt.Printf("context written to %s\n", *out)
	return nil
}
