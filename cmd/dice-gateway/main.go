// Command dice-gateway runs the home gateway: it loads a trained context,
// listens for device reports over CoAP/UDP, runs DICE online, and prints
// alerts as they are raised.
//
// Usage:
//
//	dice-gateway -data ./data/D_houseA -context context.json -listen 127.0.0.1:5683
//
// Pair it with dice-device, which replays a dataset slice as live CoAP
// traffic (optionally with an injected fault).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gateway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "", "dataset directory holding the device manifest (required)")
	ctxFile := flag.String("context", "context.json", "trained context file")
	listen := flag.String("listen", "127.0.0.1:5683", "UDP address to serve CoAP on")
	flag.Parse()

	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := dataset.Load(*dataDir)
	if err != nil {
		return err
	}
	cf, err := os.Open(*ctxFile)
	if err != nil {
		return err
	}
	ctx, err := core.LoadContext(cf, ds.Layout)
	cf.Close()
	if err != nil {
		return err
	}
	gw, err := gateway.New(ctx, core.Config{})
	if err != nil {
		return err
	}
	front, err := gateway.ServeCoAP(gw, *listen)
	if err != nil {
		return err
	}
	defer front.Close()
	fmt.Printf("gateway listening on coap://%s (%d devices, %d groups)\n",
		front.Addr(), ds.Registry.Len(), ctx.NumGroups())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case a := <-gw.Alerts():
			names := make([]string, 0, len(a.Devices))
			for _, d := range a.Devices {
				names = append(names, d.Name)
			}
			fmt.Printf("ALERT faulty=%s cause=%s detected@%s reported@%s\n",
				strings.Join(names, ","), a.Cause, a.DetectedAt, a.ReportedAt)
		case <-sig:
			st := gw.Stats()
			fmt.Printf("shutting down: %d events, %d windows, %d violations, %d alerts\n",
				st.Events, st.Windows, st.Violations, st.Alerts)
			return nil
		}
	}
}
