// Command dice-gateway runs the multi-tenant home hub: it loads one or
// more homes (each a trained context over a dataset's device universe),
// listens for device reports over CoAP/UDP, routes each report to its
// home's detector on a sharded worker pool, and prints alerts as they are
// raised.
//
// Multi-home usage:
//
//	dice-gateway -homes ./homes -listen 127.0.0.1:5683
//	             [-shards 4] [-checkpoint-dir ./ckpt] [-checkpoint-interval 30s]
//	             [-wal-dir ./wal] [-fsync batch] [-ingest-deadline 0]
//	             [-idle-evict 0] [-liveness 30m] [-http :8080]
//	             [-adapt] [-admit-after 30]
//
// -homes points at a directory with one subdirectory per home; each
// subdirectory is a dataset directory (manifest.json) that also holds the
// home's trained context.json. Devices address their home with the tenant
// path suffix (/report/<home>), e.g. `dice-device -home <home>`.
//
// Single-home usage (the original flags keep working):
//
//	dice-gateway -data ./data/D_houseA -context context.json
//	             [-checkpoint gateway.ckpt]
//
// registers the one home as tenant "default" and serves the bare paths
// (/report) as well, so existing device agents need no changes.
//
// With checkpointing enabled the hub persists each tenant atomically on
// the interval, on eviction, and on shutdown, and lazily restores each
// tenant from its file on the first report after a restart. SIGINT and
// SIGTERM cancel the run context: ingestion stops, pending alerts drain,
// final checkpoints are written.
//
// With -wal-dir set each tenant also appends every accepted report to a
// per-home write-ahead log before applying it, so a hard kill (SIGKILL,
// power loss) at any instant loses nothing: the restarted hub replays the
// WAL tail past the last checkpoint and resumes bit-identical. -fsync
// picks the durability/throughput trade-off; a tenant whose pipeline
// panics is quarantined, dead-lettered, and rebuilt from checkpoint + WAL
// without touching its siblings (see /tenants/{home}/health).
//
// With -adapt each home's context keeps learning online: recurring new
// behaviour the detector did not explain as a fault is admitted after
// -admit-after sightings, stale transitions decay away, and every
// adaptation is published as a new immutable context version the
// detector swaps to atomically. Checkpoints pin the exact version in
// use, so a restart (or restoring an older checkpoint to roll a bad
// adaptation back) lands on precisely the context that was scanning.
// Inspect a home's version at /tenants/{home}/context.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gateway"
	"repro/internal/hub"
	"repro/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-gateway:", err)
		os.Exit(1)
	}
}

// homeDef is one home to register: its tenant ID, dataset dir, and
// context file.
type homeDef struct {
	name    string
	dataDir string
	ctxFile string
}

func discoverHomes(homesDir, dataDir, ctxFile string) ([]homeDef, error) {
	if homesDir == "" {
		if dataDir == "" {
			return nil, fmt.Errorf("one of -homes or -data is required")
		}
		return []homeDef{{name: "default", dataDir: dataDir, ctxFile: ctxFile}}, nil
	}
	entries, err := os.ReadDir(homesDir)
	if err != nil {
		return nil, err
	}
	var defs []homeDef
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(homesDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, dataset.ManifestName)); err != nil {
			continue // not a dataset directory
		}
		defs = append(defs, homeDef{
			name:    e.Name(),
			dataDir: dir,
			ctxFile: filepath.Join(dir, "context.json"),
		})
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("no home directories (with %s) under %s", dataset.ManifestName, homesDir)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].name < defs[j].name })
	return defs, nil
}

func loadContext(def homeDef) (*core.Context, int, error) {
	ds, err := dataset.LoadManifest(def.dataDir)
	if err != nil {
		return nil, 0, err
	}
	cf, err := os.Open(def.ctxFile)
	if err != nil {
		return nil, 0, err
	}
	defer cf.Close()
	cctx, err := core.LoadContext(cf, ds.Layout)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", def.ctxFile, err)
	}
	return cctx, ds.Registry.Len(), nil
}

func run() error {
	homesDir := flag.String("homes", "", "directory with one dataset+context subdirectory per home")
	dataDir := flag.String("data", "", "single-home dataset directory (legacy mode)")
	ctxFile := flag.String("context", "context.json", "trained context file (single-home mode)")
	listen := flag.String("listen", "127.0.0.1:5683", "UDP address to serve CoAP on")
	shards := flag.Int("shards", 4, "hub worker pool size; any count produces identical detection output")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-home checkpoint files (<home>.ckpt)")
	ckptPath := flag.String("checkpoint", "", "single checkpoint file (legacy single-home mode)")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second, "how often to persist checkpoints")
	idleEvict := flag.Duration("idle-evict", 0, "evict homes with no reports for this long (0 disables)")
	liveness := flag.Duration("liveness", 0, "silence threshold for fail-stop device alerts (0 disables)")
	httpAddr := flag.String("http", "", "TCP address for the observability endpoint (/metrics, /tenants, /debug/pprof); empty disables")
	walDir := flag.String("wal-dir", "", "directory for per-home write-ahead logs (<home>/*.wal); empty disables the WAL")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: always (no acknowledged loss), batch (bounded loss, amortized flushes), never (OS page cache)")
	ingestDeadline := flag.Duration("ingest-deadline", 0, "max wait on a full shard queue before shedding; 0 keeps pure backpressure")
	adapt := flag.Bool("adapt", false, "adapt each home's context online: admit recurring new behaviour, decay stale transitions, publish versioned snapshots (see /tenants/{home}/context)")
	admitAfter := flag.Int("admit-after", 0, "sightings before -adapt admits a new behaviour (0 = library default)")
	flag.Parse()

	defs, err := discoverHomes(*homesDir, *dataDir, *ctxFile)
	if err != nil {
		return err
	}

	hubOpts := []hub.Option{hub.WithShards(*shards)}
	switch {
	case *ckptDir != "":
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		hubOpts = append(hubOpts, hub.WithCheckpointDir(*ckptDir))
	case *ckptPath != "":
		// Legacy flag: the one tenant maps onto the one file.
		path := *ckptPath
		hubOpts = append(hubOpts, hub.WithCheckpointPaths(func(string) string { return path }))
	}
	if *ckptDir != "" || *ckptPath != "" {
		hubOpts = append(hubOpts, hub.WithCheckpointInterval(*ckptEvery))
	}
	if *idleEvict > 0 {
		hubOpts = append(hubOpts, hub.WithIdleEviction(*idleEvict))
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			return err
		}
		hubOpts = append(hubOpts, hub.WithWALDir(*walDir), hub.WithWALSync(policy))
	}
	if *ingestDeadline > 0 {
		hubOpts = append(hubOpts, hub.WithIngestDeadline(*ingestDeadline))
	}
	h, err := hub.New(hubOpts...)
	if err != nil {
		return err
	}
	defer h.Close()

	gwOpts := []gateway.Option{
		gateway.WithConfig(core.Config{}),
		gateway.WithLiveness(*liveness),
	}
	if *adapt {
		var aOpts []core.AdapterOption
		if *admitAfter > 0 {
			aOpts = append(aOpts, core.WithAdmitAfter(*admitAfter))
		}
		gwOpts = append(gwOpts, gateway.WithAdaptation(aOpts...))
	}
	for _, def := range defs {
		cctx, devices, err := loadContext(def)
		if err != nil {
			return fmt.Errorf("home %s: %w", def.name, err)
		}
		if _, err := h.Register(def.name, cctx, gwOpts...); err != nil {
			return err
		}
		fmt.Printf("home %-16s %3d devices, %d groups\n", def.name, devices, cctx.NumGroups())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var frontOpts []hub.FrontOption
	if *homesDir == "" {
		frontOpts = append(frontOpts, hub.WithDefaultHome("default"))
	}
	front, err := hub.ServeCoAP(h, *listen, frontOpts...)
	if err != nil {
		return err
	}
	defer front.Close()

	if *httpAddr != "" {
		obs, err := hub.ServeHTTP(h, *httpAddr)
		if err != nil {
			return err
		}
		defer obs.Close()
		fmt.Printf("observability on http://%s/metrics\n", obs.Addr())
	}

	fmt.Printf("hub listening on coap://%s (%d homes, %d shards)\n",
		front.Addr(), len(defs), h.Shards())

	// Run owns alert delivery, periodic checkpoints, and idle eviction;
	// SIGINT/SIGTERM cancel the context, Run drains and writes final
	// checkpoints, and the deferred Close persists anything that trickled
	// in after the front stopped.
	if err := h.Run(ctx, printAlert); err != nil {
		return err
	}
	front.Close()
	fmt.Println("shutting down:")
	for _, home := range h.Homes() {
		if tn, ok := h.Tenant(home); ok {
			st := tn.Stats()
			fmt.Printf("  %-16s %d events, %d windows, %d violations, %d alerts (%d liveness), %d dark\n",
				home, st.Events, st.Windows, st.Violations, st.Alerts, st.LivenessAlerts, st.DarkDevices)
		}
	}
	return h.Close()
}

func printAlert(a hub.TenantAlert) {
	names := make([]string, 0, len(a.Devices))
	for _, d := range a.Devices {
		names = append(names, d.Name)
	}
	fmt.Printf("ALERT home=%s faulty=%s cause=%s detected@%s reported@%s\n",
		a.Home, strings.Join(names, ","), a.Cause, a.DetectedAt, a.ReportedAt)
}
