// Command dice-gateway runs the home gateway: it loads a trained context,
// listens for device reports over CoAP/UDP, runs DICE online, and prints
// alerts as they are raised.
//
// Usage:
//
//	dice-gateway -data ./data/D_houseA -context context.json -listen 127.0.0.1:5683
//	             [-checkpoint gateway.ckpt] [-checkpoint-interval 30s]
//	             [-liveness 30m]
//
// With -checkpoint the gateway persists its runtime state (previous group,
// partial window, counters, dedup cache) atomically on the interval and on
// shutdown, and resumes from the file on the next start — a restarted
// gateway picks the transition check up mid-stream instead of cold-starting.
// SIGINT/SIGTERM trigger a graceful shutdown: stop ingesting, drain the
// alert channel, write a final checkpoint.
//
// Pair it with dice-device, which replays a dataset slice as live CoAP
// traffic (optionally with an injected fault and/or a chaotic link).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gateway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "", "dataset directory holding the device manifest (required)")
	ctxFile := flag.String("context", "context.json", "trained context file")
	listen := flag.String("listen", "127.0.0.1:5683", "UDP address to serve CoAP on")
	ckptPath := flag.String("checkpoint", "", "checkpoint file; resume from it if present, persist to it on an interval and on shutdown")
	ckptEvery := flag.Duration("checkpoint-interval", 30*time.Second, "how often to persist the checkpoint")
	liveness := flag.Duration("liveness", 0, "silence threshold for fail-stop device alerts (0 disables)")
	httpAddr := flag.String("http", "", "TCP address for the observability endpoint (/metrics, /alerts/last, /debug/pprof); empty disables")
	flag.Parse()

	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := dataset.Load(*dataDir)
	if err != nil {
		return err
	}
	cf, err := os.Open(*ctxFile)
	if err != nil {
		return err
	}
	ctx, err := core.LoadContext(cf, ds.Layout)
	cf.Close()
	if err != nil {
		return err
	}
	gw, err := gateway.New(ctx,
		gateway.WithConfig(core.Config{}),
		gateway.WithLiveness(*liveness))
	if err != nil {
		return err
	}
	front, err := gateway.ServeCoAP(gw, *listen)
	if err != nil {
		return err
	}
	defer front.Close()

	if *httpAddr != "" {
		obs, err := gateway.ServeHTTP(gw, *httpAddr)
		if err != nil {
			return err
		}
		defer obs.Close()
		fmt.Printf("observability on http://%s/metrics\n", obs.Addr())
	}

	if *ckptPath != "" {
		cp, err := gateway.ReadCheckpoint(*ckptPath)
		switch {
		case err == nil:
			if err := front.Restore(cp); err != nil {
				return fmt.Errorf("restore %s: %w", *ckptPath, err)
			}
			fmt.Printf("resumed from %s: stream at %s, %d events, %d windows\n",
				*ckptPath, time.Duration(cp.StreamNowMS)*time.Millisecond,
				cp.Stats.Events, cp.Stats.Windows)
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start; the first checkpoint creates the file.
		default:
			return err
		}
	}

	fmt.Printf("gateway listening on coap://%s (%d devices, %d groups)\n",
		front.Addr(), ds.Registry.Len(), ctx.NumGroups())

	var ticker *time.Ticker
	tick := make(<-chan time.Time) // nil-like: never fires unless enabled
	if *ckptPath != "" && *ckptEvery > 0 {
		ticker = time.NewTicker(*ckptEvery)
		defer ticker.Stop()
		tick = ticker.C
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case a := <-gw.Alerts():
			printAlert(a)
		case <-tick:
			if err := gateway.WriteCheckpoint(*ckptPath, front.Checkpoint()); err != nil {
				fmt.Fprintln(os.Stderr, "dice-gateway: checkpoint:", err)
			}
		case <-sig:
			// Graceful shutdown: stop ingesting first so the final
			// checkpoint is a stable snapshot, then drain pending alerts,
			// then persist.
			front.Close()
			for {
				select {
				case a := <-gw.Alerts():
					printAlert(a)
					continue
				default:
				}
				break
			}
			if *ckptPath != "" {
				if err := gateway.WriteCheckpoint(*ckptPath, front.Checkpoint()); err != nil {
					return fmt.Errorf("final checkpoint: %w", err)
				}
				fmt.Printf("checkpoint written to %s\n", *ckptPath)
			}
			st := gw.Stats()
			fmt.Printf("shutting down: %d events, %d windows, %d violations, %d alerts (%d liveness), %d dark\n",
				st.Events, st.Windows, st.Violations, st.Alerts, st.LivenessAlerts, st.DarkDevices)
			return nil
		}
	}
}

func printAlert(a gateway.Alert) {
	names := make([]string, 0, len(a.Devices))
	for _, d := range a.Devices {
		names = append(names, d.Name)
	}
	fmt.Printf("ALERT faulty=%s cause=%s detected@%s reported@%s\n",
		strings.Join(names, ","), a.Cause, a.DetectedAt, a.ReportedAt)
}
