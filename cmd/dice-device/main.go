// Command dice-device is a simulated device aggregator: it replays a slice
// of a dataset as live CoAP traffic against a dice-gateway, optionally
// corrupting one device's readings with an injected fault.
//
// Usage:
//
//	dice-device -data ./data/D_houseA -gateway 127.0.0.1:5683
//	            [-from 300] [-hours 6] [-speed 600]
//	            [-fault fail-stop:light-kitchen:60]
//	            [-chaos seed=42,drop=0.1,dup=0.05,reorder=0.02,delay=5ms]
//	            [-wire binary|json] [-retries 4]
//
// -wire selects the report encoding: "binary" (the default) sends DWB1
// batch payloads through the gateway's pooled zero-alloc decode path;
// "json" sends the legacy JSON arrays. Detection output is identical.
//
// -speed is the replay acceleration (600 = one recorded hour per six wall
// seconds; 0 = as fast as possible). -chaos wraps the CoAP link with
// seeded fault injection (drop/dup/reorder/corrupt/delay, both directions
// for drop and corrupt) to exercise the gateway's dedup and the client's
// retransmission under a lossy link.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/window"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dice-device:", err)
		os.Exit(1)
	}
}

func run() error {
	dataDir := flag.String("data", "", "dataset directory (required)")
	gwAddr := flag.String("gateway", "127.0.0.1:5683", "gateway CoAP address")
	from := flag.Int("from", 300, "replay start, hours from recording start")
	hours := flag.Int("hours", 6, "replay length in hours")
	speed := flag.Float64("speed", 0, "replay acceleration factor (0 = no pacing)")
	faultSpec := flag.String("fault", "", "inject CLASS:DEVICE:ONSETMIN into the replay")
	chaosSpec := flag.String("chaos", "", "inject transport faults, e.g. seed=42,drop=0.1,dup=0.05")
	homeID := flag.String("home", "", "tenant home ID behind a multi-home hub (reports to /report/<home>)")
	retries := flag.Int("retries", 0, "reissue a timed-out exchange up to N times with exponential backoff + jitter")
	wireFmt := flag.String("wire", "binary", "wire encoding for reports: binary (DWB1 batches) or json (legacy)")
	flag.Parse()

	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	ds, err := dataset.Load(*dataDir)
	if err != nil {
		return err
	}
	var inj *faults.Injector
	if *faultSpec != "" {
		inj, err = parseFault(ds, *faultSpec)
		if err != nil {
			return err
		}
	}

	var agent *gateway.Agent
	var link *chaos.Conn
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		conn, err := net.Dial("udp", *gwAddr)
		if err != nil {
			return err
		}
		link = chaos.WrapConn(conn, cfg)
		agent = gateway.NewAgentConn(link)
		// A chaotic link needs a tighter retransmission schedule than the
		// RFC default (or a single dropped ACK stalls the replay for 2s) and
		// a per-request budget that fits the whole backoff ladder: a long
		// replay makes even 5-sigma loss streaks on one exchange likely.
		agent.Client().AckTimeout = 100 * time.Millisecond
		agent.Client().MaxRetransmit = 10
		agent.Timeout = 30 * time.Second
	} else {
		agent, err = gateway.NewAgent(*gwAddr)
		if err != nil {
			return err
		}
	}
	agent.Home = *homeID
	agent.Retries = *retries
	switch *wireFmt {
	case "binary":
		agent.Format = gateway.WireBinary
	case "json":
		agent.Format = gateway.WireJSON
	default:
		return fmt.Errorf("bad -wire %q, want binary or json", *wireFmt)
	}
	defer agent.Close()

	obs, err := ds.Windows()
	if err != nil {
		return err
	}
	start := *from * 60
	end := start + *hours*60
	if end > len(obs) {
		end = len(obs)
	}
	if start >= len(obs) {
		return fmt.Errorf("replay start beyond recording")
	}

	fmt.Fprintf(os.Stderr, "replaying windows %d..%d to %s\n", start, end, *gwAddr)
	wallStart := time.Now()
	for w := start; w < end; w++ {
		o := obs[w]
		if inj != nil {
			o = inj.Apply(o, w-start)
		}
		streamBase := time.Duration(w-start) * time.Minute
		for _, e := range windowEvents(ds, o, streamBase) {
			if err := agent.Report(e); err != nil {
				return err
			}
		}
		if err := agent.Advance(streamBase + time.Minute); err != nil {
			return err
		}
		if *speed > 0 {
			elapsed := time.Duration(float64(streamBase+time.Minute) / *speed)
			if sleep := time.Until(wallStart.Add(elapsed)); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
	st, err := agent.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("replay done: gateway saw %d events, %d windows, %d violations, %d alerts\n",
		st.Events, st.Windows, st.Violations, st.Alerts)
	if link != nil {
		cs := link.Stats()
		fmt.Printf("chaos link: %d sent, %d delivered, %d dropped, %d duplicated, %d reordered, %d corrupted\n",
			cs.Sent, cs.Delivered, cs.Dropped, cs.Dups, cs.Reordered, cs.Corrupted)
	}
	return nil
}

// windowEvents renders one observation as wire events relative to the
// stream clock.
func windowEvents(ds *dataset.Dataset, o *window.Observation, base time.Duration) []event.Event {
	var out []event.Event
	for _, id := range o.Actuated {
		out = append(out, event.Event{At: base, Device: id, Value: 1})
	}
	for slot, fired := range o.Binary {
		if fired {
			out = append(out, event.Event{At: base + time.Second, Device: ds.Layout.BinaryID(slot), Value: 1})
		}
	}
	for slot, samples := range o.Numeric {
		step := time.Minute / time.Duration(len(samples)+1)
		for i, s := range samples {
			out = append(out, event.Event{
				At:     base + time.Duration(i+1)*step,
				Device: ds.Layout.NumericID(slot),
				Value:  s,
			})
		}
	}
	return out
}

func parseFault(ds *dataset.Dataset, spec string) (*faults.Injector, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -fault %q, want CLASS:DEVICE:ONSETMIN", spec)
	}
	var class faults.Type
	for _, t := range append(faults.SensorTypes(), faults.ActuatorTypes()...) {
		if t.String() == parts[0] {
			class = t
		}
	}
	if class == 0 {
		return nil, fmt.Errorf("unknown fault class %q", parts[0])
	}
	id, ok := ds.Registry.Lookup(parts[1])
	if !ok {
		return nil, fmt.Errorf("unknown device %q", parts[1])
	}
	onset, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad onset %q: %w", parts[2], err)
	}
	return faults.NewInjector(ds.Layout, 1, faults.Fault{Device: id, Type: class, Onset: onset})
}
