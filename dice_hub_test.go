package dice

import (
	"testing"
	"time"
)

// homeEvents renders homeWindow's observation for minute w as raw wire
// events, the form a hub ingests.
func homeEvents(w int, kitchenMotionDead bool) []Event {
	base := time.Duration(w) * time.Minute
	var out []Event
	kitchen := (w/60)%2 == 0
	sound := 31.0
	if kitchen {
		if w%60 == 0 {
			out = append(out, Event{At: base, Device: 3, Value: 1})
		}
		if !kitchenMotionDead {
			out = append(out, Event{At: base + time.Second, Device: 0, Value: 1})
		}
		sound = 55
	} else {
		out = append(out, Event{At: base + time.Second, Device: 2, Value: 1})
	}
	for i := 0; i < 3; i++ {
		out = append(out, Event{At: base + time.Duration(i+1)*15*time.Second, Device: 1, Value: sound})
	}
	return out
}

// TestFacadeHub drives two tenants through the public multi-tenant API:
// home "a" loses its kitchen motion sensor mid-stream and must alert,
// home "b" replays the clean stream and must stay silent.
func TestFacadeHub(t *testing.T) {
	_, layout := buildHome(t)
	history := make([]*Observation, 0, 24*60)
	for w := 0; w < 24*60; w++ {
		history = append(history, homeWindow(layout, w, false))
	}
	cctx, err := TrainWindows(layout, time.Minute, history)
	if err != nil {
		t.Fatal(err)
	}

	h, err := NewHub(WithShards(2), WithShardQueueDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, home := range []string{"a", "b"} {
		if _, err := h.Register(home, cctx, WithGatewayConfig(Config{})); err != nil {
			t.Fatal(err)
		}
	}

	for w := 0; w < 3*60; w++ {
		for _, e := range homeEvents(w, w >= 30) {
			if err := h.Ingest("a", e); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range homeEvents(w, false) {
			if err := h.Ingest("b", e); err != nil {
				t.Fatal(err)
			}
		}
		at := time.Duration(w+1) * time.Minute
		if err := h.Advance("a", at); err != nil {
			t.Fatal(err)
		}
		if err := h.Advance("b", at); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.DrainAll(); err != nil {
		t.Fatal(err)
	}

	var got *TenantAlert
	deadline := time.After(5 * time.Second)
	for got == nil {
		select {
		case a := <-h.Alerts():
			if a.Home != "a" {
				t.Fatalf("alert from clean home %q: %+v", a.Home, a)
			}
			got = &a
		case <-deadline:
			t.Fatal("dead motion sensor never alerted through the hub")
		}
	}
	if len(got.Devices) != 1 || got.Devices[0].ID != 0 {
		t.Errorf("identified %v, want device 0", got.Devices)
	}

	ta, ok := h.Tenant("a")
	if !ok {
		t.Fatal("tenant a vanished")
	}
	tb, ok := h.Tenant("b")
	if !ok {
		t.Fatal("tenant b vanished")
	}
	if st := tb.Stats(); st.Alerts != 0 || st.Violations != 0 {
		t.Errorf("clean home b: %d alerts, %d violations", st.Alerts, st.Violations)
	}
	if st := ta.Stats(); st.Windows != 3*60 || st.Alerts == 0 {
		t.Errorf("home a: %d windows, %d alerts", st.Windows, st.Alerts)
	}
}
