// Faultsweep: inject every fault class into every eligible sensor of a
// simulated home and tabulate which check catches what — a miniature of
// the paper's Fig 5.4 you can play with interactively.
//
//	go run ./examples/faultsweep [-dataset houseB] [-trials 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/simhome"
)

func main() {
	name := flag.String("dataset", "houseB", "dataset spec to sweep")
	trials := flag.Int("trials", 40, "faulty segments per fault class")
	flag.Parse()

	spec, err := simhome.SpecByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping %s: one fault class at a time, %d trials each\n\n", *name, *trials)

	t := &report.Table{
		Title:   "Per-class detection on " + *name,
		Headers: []string{"fault-class", "recall", "by-correlation", "by-transition", "mean-detect-min"},
	}
	for _, class := range faults.SensorTypes() {
		proto := eval.DefaultProtocol()
		proto.Trials = *trials
		proto.FaultClasses = []faults.Type{class}
		r, err := eval.EvaluateDataset(spec, 42, proto)
		if err != nil {
			log.Fatal(err)
		}
		cnt := r.DetectByType[class.String()]
		total := cnt[0] + cnt[1]
		corr, trans := "-", "-"
		if total > 0 {
			corr = fmt.Sprintf("%.0f%%", 100*float64(cnt[0])/float64(total))
			trans = fmt.Sprintf("%.0f%%", 100*float64(cnt[1])/float64(total))
		}
		t.AddRow(class.String(),
			fmt.Sprintf("%.0f%%", 100*r.Detection.Recall()),
			corr, trans,
			fmt.Sprintf("%.1f", r.MeanDetectMinutes))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fail-stop faults surface through the correlation check (the state set loses bits\n" +
		"instantly); stuck-at faults that mimic a trained state survive it and fall to the\n" +
		"transition check later — the paper's Fig 5.4 in miniature.")
}
