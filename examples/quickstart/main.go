// Quickstart: build a tiny smart home by hand, train DICE on a fault-free
// history, then watch it detect and identify a dying motion sensor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// 1. Describe the deployment. One kitchen with a motion sensor, a
	// temperature sensor, and a smart bulb.
	// A single sensor pair would leave "motion missing" and "temperature
	// dropped" ambiguous; the sound sensor is what lets identification
	// converge in one step (the paper calls this the correlation degree).
	reg := dice.NewRegistry()
	motion := reg.MustAdd("motion-kitchen", dice.Binary, dice.Motion, "kitchen")
	temp := reg.MustAdd("temp-kitchen", dice.Numeric, dice.Temperature, "kitchen")
	sound := reg.MustAdd("sound-kitchen", dice.Numeric, dice.Sound, "kitchen")
	bulb := reg.MustAdd("bulb-kitchen", dice.Actuator, dice.SmartBulb, "kitchen")
	layout := dice.NewLayout(reg)

	// 2. Produce a fault-free history: the kitchen alternates between
	// empty half-hours and occupied half-hours; the bulb fires when
	// occupancy begins and the temperature rises while someone cooks.
	history := make([]*dice.Observation, 0, 48*60)
	for w := 0; w < 48*60; w++ {
		history = append(history, observe(layout, w, occupied(w), false))
	}

	// 3. Precompute the context (correlation groups + transitions).
	ctx, err := dice.TrainWindows(layout, time.Minute, history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d groups, correlation degree %.1f\n",
		ctx.NumGroups(), ctx.CorrelationDegree())

	// 4. Run the real-time phase; the motion sensor dies at minute 95.
	det, err := dice.New(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < 4*60; w++ {
		o := observe(layout, w, occupied(w), w >= 95)
		res, err := det.Process(o)
		if err != nil {
			log.Fatal(err)
		}
		if res.Detected {
			fmt.Printf("minute %3d: violation (%s check)\n", w, res.Violation)
		}
		if res.Alert != nil {
			name := reg.MustGet(res.Alert.Devices[0]).Name
			fmt.Printf("minute %3d: ALERT -> faulty device %q "+
				"(detected at minute %d)\n", w, name, res.Alert.DetectedWindow)
			return
		}
	}
	fmt.Println("no fault found (unexpected)")
	_ = motion
	_ = temp
	_ = sound
	_ = bulb
}

// occupied says whether someone is in the kitchen at minute w: half-hour
// on, half-hour off.
func occupied(w int) bool { return (w/30)%2 == 1 }

// observe builds the observation for minute w. With motionDead the motion
// sensor reports nothing even when someone is there — the fault DICE has
// to catch.
func observe(layout *dice.Layout, w int, occ, motionDead bool) *dice.Observation {
	o := layout.NewObservation(w)
	tempLevel, soundLevel := 19.0, 31.0
	if occ {
		if !motionDead {
			o.Binary[0] = true // motion fires
		}
		tempLevel = 21.0  // cooking warms the kitchen
		soundLevel = 55.0 // and makes noise
		if !occupiedPrev(w) {
			o.Actuated = append(o.Actuated, dice.DeviceID(3)) // bulb turns on
		}
	}
	o.Numeric[0] = []float64{tempLevel, tempLevel, tempLevel, tempLevel}
	o.Numeric[1] = []float64{soundLevel, soundLevel, soundLevel, soundLevel}
	return o
}

func occupiedPrev(w int) bool { return w > 0 && occupied(w-1) }
