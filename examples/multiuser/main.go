// Multiuser: the paper's §VI multi-resident discussion. With several
// occupants the joint sensor state space grows combinatorially; the
// suggested mitigation is to "group the sensors that are spatially closely
// located and connect each group to DICE individually". This example runs
// both deployments on the two-resident testbed and compares the context
// sizes, then shows that the partitioned detector still catches and
// correctly localizes a fault.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simhome"
)

func main() {
	spec := simhome.SpecDTwoR()
	spec.Hours = 6 * 24
	home, err := simhome.New(spec, 31)
	if err != nil {
		log.Fatal(err)
	}
	const trainWindows = 4 * 24 * 60

	// Joint deployment: one DICE over the whole home.
	joint := core.NewTrainer(home.Layout(), time.Minute)
	// Partitioned deployment: one DICE per room.
	parts := core.PartitionByRoom(home.Registry())
	partitioned, err := core.NewPartitionedTrainer(home.Layout(), parts, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	for w := 0; w < trainWindows; w++ {
		o := home.Window(w)
		if err := joint.Calibrate(o); err != nil {
			log.Fatal(err)
		}
		if err := partitioned.Calibrate(o); err != nil {
			log.Fatal(err)
		}
	}
	if err := joint.FinishCalibration(); err != nil {
		log.Fatal(err)
	}
	if err := partitioned.FinishCalibration(); err != nil {
		log.Fatal(err)
	}
	for w := 0; w < trainWindows; w++ {
		o := home.Window(w)
		if err := joint.Learn(o); err != nil {
			log.Fatal(err)
		}
		if err := partitioned.Learn(o); err != nil {
			log.Fatal(err)
		}
	}
	jctx, err := joint.Context()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two residents, %d rooms:\n", len(parts))
	fmt.Printf("  joint DICE:       %d groups (the combinations multiply)\n", jctx.NumGroups())
	fmt.Printf("  partitioned DICE: %d groups across %d room instances\n",
		partitioned.TotalGroups(), len(parts))

	// A fault in the kitchen must surface in the kitchen partition, with
	// full-registry device IDs.
	pd, err := partitioned.Detector(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	target, _ := home.Registry().Lookup("sound-kitchen")
	inj, err := faults.NewInjector(home.Layout(), 3,
		faults.Fault{Device: target, Type: faults.HighNoise, Onset: 0})
	if err != nil {
		log.Fatal(err)
	}
	start := trainWindows + 18*60 // evening
	for w := 0; w < 3*60; w++ {
		o := inj.Apply(home.Window(start+w), w)
		results, err := pd.Process(o)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Result.Alert != nil {
				names := make([]string, 0, len(r.Result.Alert.Devices))
				for _, id := range r.Result.Alert.Devices {
					names = append(names, home.Registry().MustGet(id).Name)
				}
				fmt.Printf("  partition %q raised the alert after %dm: faulty %v\n",
					r.Partition, w, names)
				return
			}
		}
	}
	fmt.Println("  no alert within 3h (unexpected)")
}
