// Multitenant: run several homes behind one hub — the deployment a real
// smart-home service needs, where a single process watches many
// households at once. Three homes share a trained context, replay
// different afternoons concurrently on a sharded worker pool, and one of
// them loses its kitchen light mid-stream; the hub raises the alert tagged
// with the faulty home while the other tenants stay silent.
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	dice "repro"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/window"
)

func main() {
	// One context serves every home: the paper's testbed, trained on three
	// fault-free days. (Real deployments train per home; sharing here keeps
	// the example fast and makes cross-tenant comparison exact.)
	spec := simhome.SpecDHouseA()
	spec.Hours = 4 * 24
	home, err := simhome.New(spec, 2026)
	if err != nil {
		log.Fatal(err)
	}
	const trainWindows = 3 * 24 * 60
	trainer := core.NewTrainer(home.Layout(), time.Minute)
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Calibrate(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	if err := trainer.FinishCalibration(); err != nil {
		log.Fatal(err)
	}
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Learn(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	cctx, err := trainer.Context()
	if err != nil {
		log.Fatal(err)
	}

	h, err := dice.NewHub(dice.WithShards(2))
	if err != nil {
		log.Fatal(err)
	}
	homes := []string{"maple", "oak", "pine"}
	for _, name := range homes {
		if _, err := h.Register(name, cctx, dice.WithGatewayConfig(dice.Config{})); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("hub: %d homes on %d shards\n", len(homes), h.Shards())

	// Run owns alert delivery; cancelling the context drains the shards
	// and returns.
	runCtx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		runDone <- h.Run(runCtx, func(a dice.TenantAlert) {
			names := make([]string, 0, len(a.Devices))
			for _, d := range a.Devices {
				names = append(names, d.Name)
			}
			fmt.Printf("t+%v ALERT home=%s faulty=%s cause=%s\n",
				a.ReportedAt, a.Home, strings.Join(names, ","), a.Cause)
		})
	}()

	// Oak's kitchen light goes fail-stop 30 minutes into the replay.
	target, _ := home.Registry().Lookup("light-kitchen")
	inj, err := faults.NewInjector(home.Layout(), 3,
		faults.Fault{Device: target, Type: faults.FailStop, Onset: 30})
	if err != nil {
		log.Fatal(err)
	}

	// Each home replays a different four-hour slice of day 3's afternoon,
	// interleaved minute by minute the way live traffic arrives.
	for w := 0; w < 4*60; w++ {
		for i, name := range homes {
			obs := home.Window(trainWindows + 12*60 + i*60 + w)
			if name == "oak" {
				obs = inj.Apply(obs, w)
			}
			base := time.Duration(w) * time.Minute
			for _, e := range observationEvents(home.Layout(), obs, base) {
				if err := h.Ingest(name, e); err != nil {
					log.Fatal(err)
				}
			}
			if err := h.Advance(name, base+time.Minute); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := h.DrainAll(); err != nil {
		log.Fatal(err)
	}
	cancel()
	if err := <-runDone; err != nil {
		log.Fatal(err)
	}

	for _, name := range homes {
		tn, ok := h.Tenant(name)
		if !ok {
			continue
		}
		st := tn.Stats()
		fmt.Printf("home %-6s %5d events %4d windows %3d violations %d alerts\n",
			name, st.Events, st.Windows, st.Violations, st.Alerts)
	}
	if err := h.Close(); err != nil {
		log.Fatal(err)
	}
}

// observationEvents renders an observation back into raw events, as the
// device aggregators would have sent them.
func observationEvents(layout *window.Layout, o *window.Observation, base time.Duration) []dice.Event {
	var out []dice.Event
	for _, id := range o.Actuated {
		out = append(out, dice.Event{At: base, Device: id, Value: 1})
	}
	for slot, fired := range o.Binary {
		if fired {
			out = append(out, dice.Event{At: base + time.Second, Device: layout.BinaryID(slot), Value: 1})
		}
	}
	for slot, samples := range o.Numeric {
		step := time.Minute / time.Duration(len(samples)+1)
		for i, s := range samples {
			out = append(out, dice.Event{At: base + time.Duration(i+1)*step, Device: layout.NumericID(slot), Value: s})
		}
	}
	return out
}
