// Weights: the paper's §VI device-weight discussion. A gas sensor's
// failure is more dangerous than a light sensor's, so DICE can carry
// per-device criticality weights: when a weighted device enters the
// suspect set, the alarm fires immediately instead of waiting for the
// intersection loop to shrink below numThre. This example shows the same
// ambiguous fault reported (a) patiently without weights and (b)
// immediately once the gas sensor is marked critical.
//
//	go run ./examples/weights
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simhome"
)

func main() {
	spec := simhome.SpecDHouseA()
	spec.Hours = 5 * 24
	home, err := simhome.New(spec, 5)
	if err != nil {
		log.Fatal(err)
	}
	const trainWindows = 3 * 24 * 60
	trainer := core.NewTrainer(home.Layout(), time.Minute)
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Calibrate(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	if err := trainer.FinishCalibration(); err != nil {
		log.Fatal(err)
	}
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Learn(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	ctx, err := trainer.Context()
	if err != nil {
		log.Fatal(err)
	}

	gas, ok := home.Registry().Lookup("gas-kitchen")
	if !ok {
		log.Fatal("no gas sensor")
	}
	sound, ok := home.Registry().Lookup("sound-kitchen")
	if !ok {
		log.Fatal("no sound sensor")
	}

	fmt.Println("without weights (numThre=1, identification must narrow to one device):")
	run(home, ctx, gas, sound, core.Config{})

	fmt.Println("\nwith gas-kitchen marked critical (weight 10, alarm at 5):")
	run(home, ctx, gas, sound, core.Config{
		Weights:     map[device.ID]float64{gas: 10},
		WeightAlarm: 5,
	})
}

func run(home *simhome.Home, ctx *core.Context, gas, sound device.ID, cfg core.Config) {
	det, err := core.New(ctx, core.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	// Two kitchen sensors go noisy at once. With numThre=1 the suspect
	// intersection never shrinks below two devices, so unweighted
	// identification only reports after its patience runs out — unless the
	// critical gas sensor is in the set.
	inj, err := faults.NewInjector(home.Layout(), 17,
		faults.Fault{Device: gas, Type: faults.HighNoise, Onset: 0},
		faults.Fault{Device: sound, Type: faults.HighNoise, Onset: 0})
	if err != nil {
		log.Fatal(err)
	}
	start := 3*24*60 + 17*60 // evening: the kitchen is in use
	detected := -1
	for w := 0; w < 4*60; w++ {
		o := inj.Apply(home.Window(start+w), w)
		res, err := det.Process(o)
		if err != nil {
			log.Fatal(err)
		}
		if res.Detected && detected < 0 {
			detected = w
		}
		if res.Alert != nil {
			names := make([]string, 0, len(res.Alert.Devices))
			for _, id := range res.Alert.Devices {
				names = append(names, home.Registry().MustGet(id).Name)
			}
			early := ""
			if res.Alert.EarlyWeight {
				early = " (early: critical device in suspect set)"
			}
			fmt.Printf("  detected at +%dm, reported at +%dm: %v%s\n",
				detected, w, names, early)
			return
		}
	}
	fmt.Println("  no alert within 4h")
}
