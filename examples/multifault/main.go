// Multifault: the §VI discussion experiment — up to three devices fail
// simultaneously and DICE runs with numThre = 3. Identification has to
// narrow a larger suspect set, so precision and recall drop relative to
// the single-fault case; this example shows both side by side.
//
//	go run ./examples/multifault
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/eval"
	"repro/internal/report"
	"repro/internal/simhome"
)

func main() {
	spec := simhome.SpecDTwoR() // the busiest testbed: two residents
	fmt.Printf("dataset %s: single-fault vs multi-fault identification\n\n", spec.Name)

	t := &report.Table{
		Title:   "§VI — Multi-Fault Impact",
		Headers: []string{"setting", "det-P", "det-R", "id-P", "id-R"},
	}
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

	single := eval.DefaultProtocol()
	single.Trials = 30
	r1, err := eval.EvaluateDataset(spec, 42, single)
	if err != nil {
		log.Fatal(err)
	}
	t.AddRow("1 fault, numThre=1",
		pct(r1.Detection.Precision()), pct(r1.Detection.Recall()),
		pct(r1.Identification.Precision()), pct(r1.Identification.Recall()))

	for n := 2; n <= 3; n++ {
		p := eval.MultiFaultProtocol(eval.DefaultProtocol(), 3)
		p.FaultsPerSegment = n
		p.Trials = 30
		r, err := eval.EvaluateDataset(spec, 42, p)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%d faults, numThre=3", n),
			pct(r.Detection.Precision()), pct(r.Detection.Recall()),
			pct(r.Identification.Precision()), pct(r.Identification.Recall()))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simultaneous faults blur each other's evidence: the suspect intersections stop\n" +
		"shrinking to a single device, exactly the degradation the paper reports (79.5%\n" +
		"precision / 63.3% recall for its multi-fault runs).")
}
