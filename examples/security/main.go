// Security: the paper's §VI extension — the same context that catches
// faults also catches *attacks*, because a spoofed sensor violates the
// learned correlations just like a broken one. This example replays the
// paper's two attack cases against the simulated testbed:
//
//  1. the kitchen temperature sensor is driven high to trick the fan
//     switch into running (an economic attack);
//
//  2. the bedroom light sensor is driven high while the resident sleeps
//     (a privacy attack: a light-low rule would raise the blinds).
//
//     go run ./examples/security
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/simhome"
	"repro/internal/window"
)

func main() {
	spec := simhome.SpecDHouseA()
	spec.Hours = 5 * 24
	home, err := simhome.New(spec, 99)
	if err != nil {
		log.Fatal(err)
	}
	const trainWindows = 3 * 24 * 60
	trainer := core.NewTrainer(home.Layout(), time.Minute)
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Calibrate(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	if err := trainer.FinishCalibration(); err != nil {
		log.Fatal(err)
	}
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Learn(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	ctx, err := trainer.Context()
	if err != nil {
		log.Fatal(err)
	}

	attack1 := attack{
		name:    "spoof temp-kitchen high (force the fan on)",
		device:  mustLookup(home, "temp-kitchen"),
		value:   29.5,                 // far above anything cooking produces
		start:   trainWindows + 14*60, // afternoon
		minutes: 90,
	}
	attack2 := attack{
		name:    "spoof light-bedroom high while the resident sleeps",
		device:  mustLookup(home, "light-bedroom"),
		value:   240,                  // "bright room" at 02:00
		start:   trainWindows + 26*60, // 02:00 next night
		minutes: 90,
	}
	for _, a := range []attack{attack1, attack2} {
		runAttack(home, ctx, a)
	}
}

type attack struct {
	name    string
	device  device.ID
	value   float64
	start   int
	minutes int
}

func mustLookup(h *simhome.Home, name string) device.ID {
	id, ok := h.Registry().Lookup(name)
	if !ok {
		log.Fatalf("no device %q", name)
	}
	return id
}

func runAttack(home *simhome.Home, ctx *core.Context, a attack) {
	det, err := core.New(ctx)
	if err != nil {
		log.Fatal(err)
	}
	slot, _ := home.Layout().NumericSlot(a.device)
	warmup := 60
	fmt.Printf("\n== attack: %s ==\n", a.name)
	for w := a.start - warmup; w < a.start+a.minutes; w++ {
		o := home.Window(w)
		if w >= a.start {
			o = spoof(o, slot, a.value)
		}
		res, err := det.Process(o)
		if err != nil {
			log.Fatal(err)
		}
		if res.Detected {
			fmt.Printf("  +%dm: violation (%s check)\n", w-a.start, res.Violation)
		}
		if res.Alert != nil {
			names := make([]string, 0, len(res.Alert.Devices))
			for _, id := range res.Alert.Devices {
				names = append(names, home.Registry().MustGet(id).Name)
			}
			fmt.Printf("  +%dm: ALERT -> compromised device(s): %v\n", w-a.start, names)
			return
		}
	}
	fmt.Println("  attack not detected within the window")
}

// spoof overwrites a numeric sensor's samples with the attacker's value.
func spoof(o *window.Observation, slot int, v float64) *window.Observation {
	out := o.Clone()
	for i := range out.Numeric[slot] {
		out.Numeric[slot][i] = v
	}
	if len(out.Numeric[slot]) == 0 {
		out.Numeric[slot] = []float64{v, v, v, v}
	}
	return out
}
