// Streaming: run the full simulated testbed through the live gateway — the
// deployment of Figure 3.1 — and inject a stuck-at fault mid-stream. The
// gateway ingests raw timestamped events, windows them, runs DICE online,
// and pushes an alert the moment identification concludes.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/gateway"
	"repro/internal/simhome"
	"repro/internal/window"
)

func main() {
	// Simulate the paper's testbed (6 binary, 31 numeric, 8 actuators) for
	// five days; train on the first three.
	spec := simhome.SpecDHouseA()
	spec.Hours = 5 * 24
	home, err := simhome.New(spec, 2026)
	if err != nil {
		log.Fatal(err)
	}
	const trainWindows = 3 * 24 * 60
	trainer := core.NewTrainer(home.Layout(), time.Minute)
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Calibrate(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	if err := trainer.FinishCalibration(); err != nil {
		log.Fatal(err)
	}
	for w := 0; w < trainWindows; w++ {
		if err := trainer.Learn(home.Window(w)); err != nil {
			log.Fatal(err)
		}
	}
	ctx, err := trainer.Context()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context: %d groups, degree %.1f, %d G2G transitions\n",
		ctx.NumGroups(), ctx.CorrelationDegree(), ctx.G2G().NumTransitions())

	gw, err := gateway.New(ctx, gateway.WithConfig(core.Config{}))
	if err != nil {
		log.Fatal(err)
	}

	// Stream an afternoon; the kitchen gas sensor sticks at a wrong level
	// 45 minutes in.
	target, _ := home.Registry().Lookup("gas-kitchen")
	inj, err := faults.NewInjector(home.Layout(), 7,
		faults.Fault{Device: target, Type: faults.StuckAt, Onset: 45})
	if err != nil {
		log.Fatal(err)
	}

	start := trainWindows + 12*60 // day 3, noon
	for w := 0; w < 6*60; w++ {
		obs := inj.Apply(home.Window(start+w), w)
		for _, e := range observationEvents(home.Layout(), obs, time.Duration(w)*time.Minute) {
			if err := gw.Ingest(e); err != nil {
				log.Fatal(err)
			}
		}
		if err := gw.AdvanceTo(time.Duration(w+1) * time.Minute); err != nil {
			log.Fatal(err)
		}
		select {
		case a := <-gw.Alerts():
			names := make([]string, 0, len(a.Devices))
			for _, d := range a.Devices {
				names = append(names, d.Name)
			}
			fmt.Printf("t+%v ALERT faulty=%s cause=%s (fault injected at t+45m on gas-kitchen)\n",
				a.ReportedAt, strings.Join(names, ","), a.Cause)
			st := gw.Stats()
			fmt.Printf("gateway stats: %d events, %d windows, %d violations\n",
				st.Events, st.Windows, st.Violations)
			return
		default:
		}
	}
	fmt.Println("stream ended without an alert (the stuck level may have matched the quiet level; rerun with another seed)")
}

// observationEvents renders an observation back into raw events, as the
// device aggregators would have sent them.
func observationEvents(layout *window.Layout, o *window.Observation, base time.Duration) []event.Event {
	var out []event.Event
	for _, id := range o.Actuated {
		out = append(out, event.Event{At: base, Device: id, Value: 1})
	}
	for slot, fired := range o.Binary {
		if fired {
			out = append(out, event.Event{At: base + time.Second, Device: layout.BinaryID(slot), Value: 1})
		}
	}
	for slot, samples := range o.Numeric {
		step := time.Minute / time.Duration(len(samples)+1)
		for i, s := range samples {
			out = append(out, event.Event{At: base + time.Duration(i+1)*step, Device: layout.NumericID(slot), Value: s})
		}
	}
	return out
}
