package dice

// One benchmark per table and figure of the paper's evaluation (§V). Each
// bench regenerates its table/figure on a scaled-down protocol (shorter
// precomputation, fewer trials) so `go test -bench=.` finishes in minutes;
// cmd/dice-eval runs the full-scale versions. Quality metrics are attached
// with b.ReportMetric — precision/recall as fractions, latency in minutes —
// so the shapes the paper reports are visible straight from the bench
// output.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/simhome"
	"repro/internal/window"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 42

// benchProto is the scaled-down §V protocol: 48h precomputation, 8 faulty
// trials per dataset.
func benchProto() eval.Protocol {
	p := eval.DefaultProtocol()
	p.PrecomputeHours = 48
	p.Trials = 8
	return p
}

// benchSpec truncates a dataset spec for benching.
func benchSpec(name string) simhome.Spec {
	spec, err := simhome.SpecByName(name)
	if err != nil {
		panic(err)
	}
	spec.Hours = 96
	return spec
}

// trainCache shares precomputations across benchmark iterations.
var (
	trainMu    sync.Mutex
	trainCache = map[string]*eval.Trained{}
)

func benchTrained(b *testing.B, name string) *eval.Trained {
	b.Helper()
	trainMu.Lock()
	defer trainMu.Unlock()
	if t, ok := trainCache[name]; ok {
		return t
	}
	t, err := eval.Train(benchSpec(name), benchSeed, benchProto())
	if err != nil {
		b.Fatal(err)
	}
	trainCache[name] = t
	return t
}

func benchEvaluate(b *testing.B, name string) *eval.DatasetResult {
	b.Helper()
	r, err := eval.EvaluateTrained(benchTrained(b, name))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable41Datasets regenerates the dataset inventory: it
// instantiates all ten simulated homes and touches one window of each.
func BenchmarkTable41Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range simhome.AllSpecs() {
			h, err := simhome.New(spec, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			if h.Window(0) == nil {
				b.Fatal("nil window")
			}
		}
	}
}

// BenchmarkTable51CheckLatency regenerates the correlation-vs-transition
// detection-time split on houseB.
func BenchmarkTable51CheckLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchEvaluate(b, "houseB")
		if c, ok := r.DetectMinutesByCheck["correlation"]; ok {
			b.ReportMetric(c, "corr-min")
		}
		if tr, ok := r.DetectMinutesByCheck["transition"]; ok {
			b.ReportMetric(tr, "trans-min")
		}
	}
}

// BenchmarkTable52CorrelationDegree regenerates the correlation-degree
// table across three representative datasets.
func BenchmarkTable52CorrelationDegree(b *testing.B) {
	for _, name := range []string{"houseA", "twor", "D_houseA"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t := benchTrained(b, name)
				b.ReportMetric(t.Context.CorrelationDegree(), "degree")
				b.ReportMetric(float64(t.Context.NumGroups()), "groups")
			}
		})
	}
}

// BenchmarkFig51aDetectionAccuracy regenerates detection precision/recall.
func BenchmarkFig51aDetectionAccuracy(b *testing.B) {
	for _, name := range []string{"houseA", "D_houseA"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchEvaluate(b, name)
				b.ReportMetric(r.Detection.Precision(), "precision")
				b.ReportMetric(r.Detection.Recall(), "recall")
			}
		})
	}
}

// BenchmarkFig51bIdentificationAccuracy regenerates identification
// precision/recall.
func BenchmarkFig51bIdentificationAccuracy(b *testing.B) {
	for _, name := range []string{"houseA", "D_houseA"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchEvaluate(b, name)
				b.ReportMetric(r.Identification.Precision(), "precision")
				b.ReportMetric(r.Identification.Recall(), "recall")
			}
		})
	}
}

// BenchmarkFig52Latency regenerates detection/identification latency.
func BenchmarkFig52Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchEvaluate(b, "D_houseA")
		b.ReportMetric(r.MeanDetectMinutes, "detect-min")
		b.ReportMetric(r.MeanIdentifyMinutes, "identify-min")
	}
}

// BenchmarkFig53ComputeTime measures the per-window computation cost of
// the three real-time stages on the largest deployment (hh102, 112
// sensors). The paper's bound is 50 ms per window.
func BenchmarkFig53ComputeTime(b *testing.B) {
	t := benchTrained(b, "hh102")
	det, err := core.New(t.Context)
	if err != nil {
		b.Fatal(err)
	}
	var corr, trans time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := det.Process(t.Home.Window(48*60 + i%(24*60)))
		if err != nil {
			b.Fatal(err)
		}
		corr += res.Timing.Correlation
		trans += res.Timing.Transition
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(corr.Nanoseconds())/float64(b.N), "corr-ns/window")
		b.ReportMetric(float64(trans.Nanoseconds())/float64(b.N), "trans-ns/window")
	}
}

// BenchmarkFig54DetectionRatio regenerates the per-fault-type check split.
func BenchmarkFig54DetectionRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchEvaluate(b, "houseB")
		for typ, cnt := range r.DetectByType {
			total := cnt[0] + cnt[1]
			if total > 0 {
				b.ReportMetric(float64(cnt[1])/float64(total), typ+"-trans-ratio")
			}
		}
	}
}

// BenchmarkActuatorFaults regenerates the §5.1.3 actuator-fault accuracy.
func BenchmarkActuatorFaults(b *testing.B) {
	proto := eval.ActuatorProtocol(benchProto())
	for i := 0; i < b.N; i++ {
		r, err := eval.EvaluateDataset(benchSpec("D_houseA"), benchSeed, proto)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Detection.Recall(), "det-recall")
		b.ReportMetric(r.Identification.Precision(), "id-precision")
	}
}

// BenchmarkMultiFault regenerates the §VI multi-fault experiment (three
// simultaneous faults, numThre=3).
func BenchmarkMultiFault(b *testing.B) {
	proto := eval.MultiFaultProtocol(benchProto(), 3)
	for i := 0; i < b.N; i++ {
		r, err := eval.EvaluateDataset(benchSpec("D_houseA"), benchSeed, proto)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Identification.Recall(), "id-recall")
	}
}

// BenchmarkAblations regenerates the §VI parameter study (here: the
// 2-minute duration variant).
func BenchmarkAblations(b *testing.B) {
	proto := benchProto()
	proto.WindowsPerAggregate = 2
	for i := 0; i < b.N; i++ {
		r, err := eval.RunAblation(benchSpec("D_houseA"), benchSeed, proto, "duration 2m")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Identification.Recall(), "id-recall")
		b.ReportMetric(float64(r.NumGroups), "groups")
	}
}

// BenchmarkBaselines regenerates the quantified Table 2.1 comparison on a
// compact dataset.
func BenchmarkBaselines(b *testing.B) {
	cfg := baseline.CompareConfig{PrecomputeHours: 48, SegmentHours: 6, Trials: 6, Seed: benchSeed}
	for i := 0; i < b.N; i++ {
		rows, err := baseline.Compare(benchSpec("houseB"), benchSeed, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.Recall, row.Detector+"-recall")
		}
	}
}

// scanBenchContext builds a synthetic context with size groups over a
// 128-bit state set (80 binary + 16 numeric sensors), clustered the way real
// catalogues are: near-neighbour variants of a few dozen base patterns.
func scanBenchContext(b *testing.B, size int) (*core.Context, *bitvec.Vec, *bitvec.Vec) {
	b.Helper()
	reg := device.NewRegistry()
	for i := 0; i < 80; i++ {
		reg.MustAdd(fmt.Sprintf("bin-%03d", i), device.Binary, device.Motion, "room")
	}
	thre := make([]float64, 16)
	for i := range thre {
		reg.MustAdd(fmt.Sprintf("num-%03d", i), device.Numeric, device.Temperature, "room")
		thre[i] = 20
	}
	layout := window.NewLayout(reg)
	cb, err := core.NewContextBuilder(layout, time.Minute, thre)
	if err != nil {
		b.Fatal(err)
	}
	nbits := layout.NumBinary() + core.BitsPerNumeric*layout.NumNumeric()
	rng := rand.New(rand.NewSource(benchSeed))
	seeds := make([]*bitvec.Vec, 32)
	for i := range seeds {
		v := bitvec.New(nbits)
		for j := 0; j < nbits; j++ {
			if rng.Float64() < 0.25 {
				v.Set(j)
			}
		}
		seeds[i] = v
	}
	for cb.NumGroups() < size {
		g := seeds[rng.Intn(len(seeds))].Clone()
		for f := rng.Intn(8); f > 0; f-- {
			g.Flip(rng.Intn(nbits))
		}
		cb.AddGroup(g)
	}
	ctx, err := cb.Build()
	if err != nil {
		b.Fatal(err)
	}
	member, err := ctx.Group(size / 2)
	if err != nil {
		b.Fatal(err)
	}
	mainQuery := member.Clone()
	missQuery := member.Clone()
	missQuery.Flip(0)
	missQuery.Flip(nbits / 2)
	missQuery.Flip(nbits - 1)
	return ctx, mainQuery, missQuery
}

// BenchmarkScan measures the correlation scan — the per-window hot
// operation of the real-time phase — at catalogue sizes 10^2/10^3/10^4, on
// both paths (main-group exact match, and a violation near-miss), for the
// indexed implementation against the retained naive reference.
func BenchmarkScan(b *testing.B) {
	const maxDist = 4
	for _, size := range []int{100, 1000, 10000} {
		ctx, mainQ, missQ := scanBenchContext(b, size)
		scratch := new(core.ScanScratch)
		b.Run(fmt.Sprintf("indexed/main/%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := ctx.ScanWith(scratch, mainQ, maxDist); c.Main == core.NoGroup {
					b.Fatal("lost main group")
				}
			}
		})
		b.Run(fmt.Sprintf("naive/main/%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c := ctx.ScanNaive(mainQ, maxDist); c.Main == core.NoGroup {
					b.Fatal("lost main group")
				}
			}
		})
		b.Run(fmt.Sprintf("indexed/violation/%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c := ctx.ScanWith(scratch, missQ, maxDist); c.Main != core.NoGroup {
					b.Fatal("unexpected main group")
				}
			}
		})
		b.Run(fmt.Sprintf("naive/violation/%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if c := ctx.ScanNaive(missQ, maxDist); c.Main != core.NoGroup {
					b.Fatal("unexpected main group")
				}
			}
		})
	}
}

// BenchmarkEvaluateParallel measures the worker-pool evaluation harness at
// 1/2/4 workers over one shared precomputation. On multi-core hardware the
// per-op time should scale near-linearly to 4 workers; results are
// bit-identical at every width (TestEvaluateTrainedParallelDeterminism).
func BenchmarkEvaluateParallel(b *testing.B) {
	t := benchTrained(b, "houseB")
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := eval.EvaluateTrainedWorkers(t, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Detection.Recall(), "det-recall")
			}
		})
	}
}

// BenchmarkTrainingThroughput measures precomputation cost per window on
// the paper's own testbed deployment.
func BenchmarkTrainingThroughput(b *testing.B) {
	spec := benchSpec("D_houseA")
	h, err := simhome.New(spec, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	windows := h.WindowRange(0, 24*60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrainWindows(h.Layout(), time.Minute, windows); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(windows)), "windows/op")
}

// BenchmarkFaultInjection measures the injector overhead per window.
func BenchmarkFaultInjection(b *testing.B) {
	t := benchTrained(b, "D_houseA")
	fs, err := t.PlanFaults(0)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := t.InjectorFor(0, fs)
	if err != nil {
		b.Fatal(err)
	}
	o := t.Home.Window(50 * 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.Apply(o, i%360)
	}
}

// Sanity check that the bench fixtures stay valid as the code evolves.
func TestBenchFixtures(t *testing.T) {
	for _, name := range []string{"houseA", "houseB", "twor", "hh102", "D_houseA"} {
		spec := benchSpec(name)
		if spec.Hours != 96 {
			t.Errorf("%s: hours = %d", name, spec.Hours)
		}
	}
	p := benchProto()
	if p.PrecomputeHours != 48 || p.Trials != 8 {
		t.Errorf("benchProto: %+v", p)
	}
	if len(faults.SensorTypes()) != 5 {
		t.Error("sensor fault classes changed; update benches")
	}
	if fmt.Sprintf("%d", benchSeed) != "42" {
		t.Error("bench seed drifted")
	}
}
