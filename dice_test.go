package dice

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// buildHome assembles a two-room home through the public facade.
func buildHome(t testing.TB) (*Registry, *Layout) {
	t.Helper()
	reg := NewRegistry()
	reg.MustAdd("motion-kitchen", Binary, Motion, "kitchen")
	reg.MustAdd("sound-kitchen", Numeric, Sound, "kitchen")
	reg.MustAdd("motion-bedroom", Binary, Motion, "bedroom")
	reg.MustAdd("bulb-kitchen", Actuator, SmartBulb, "kitchen")
	return reg, NewLayout(reg)
}

// homeWindow synthesizes one observation: kitchen busy on even hours,
// bedroom on odd hours.
func homeWindow(l *Layout, w int, kitchenMotionDead bool) *Observation {
	o := l.NewObservation(w)
	kitchen := (w/60)%2 == 0
	sound := 31.0
	if kitchen {
		if !kitchenMotionDead {
			o.Binary[0] = true
		}
		sound = 55
		if w%60 == 0 {
			o.Actuated = append(o.Actuated, DeviceID(3))
		}
	} else {
		o.Binary[1] = true
	}
	o.Numeric[0] = []float64{sound, sound, sound}
	return o
}

func TestFacadeEndToEnd(t *testing.T) {
	_, layout := buildHome(t)
	history := make([]*Observation, 0, 24*60)
	for w := 0; w < 24*60; w++ {
		history = append(history, homeWindow(layout, w, false))
	}
	ctx, err := TrainWindows(layout, time.Minute, history)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	det, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var alert *Alert
	for w := 0; w < 3*60 && alert == nil; w++ {
		res, err := det.Process(homeWindow(layout, w, w >= 30))
		if err != nil {
			t.Fatal(err)
		}
		alert = res.Alert
	}
	if alert == nil {
		t.Fatal("dead motion sensor never identified")
	}
	if len(alert.Devices) != 1 || alert.Devices[0] != 0 {
		t.Errorf("identified %v, want [0]", alert.Devices)
	}
	if alert.Cause != CheckCorrelation && !alert.Cause.IsTransition() {
		t.Errorf("cause = %v", alert.Cause)
	}
}

func TestFacadeContextPersistence(t *testing.T) {
	_, layout := buildHome(t)
	history := make([]*Observation, 0, 12*60)
	for w := 0; w < 12*60; w++ {
		history = append(history, homeWindow(layout, w, false))
	}
	ctx, err := TrainWindows(layout, time.Minute, history)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadContext(&buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumGroups() != ctx.NumGroups() {
		t.Errorf("groups after reload: %d vs %d", loaded.NumGroups(), ctx.NumGroups())
	}
	if _, err := New(loaded); err != nil {
		t.Fatalf("detector from reloaded context: %v", err)
	}
}

// The timing surface re-exported through the facade: schema-v2 contexts
// carry interval sketches through a save/load round trip, the check
// pipeline is inspectable and replaceable, and the timing cause belongs to
// its own family.
func TestFacadeTimingSurface(t *testing.T) {
	_, layout := buildHome(t)
	history := make([]*Observation, 0, 12*60)
	for w := 0; w < 12*60; w++ {
		history = append(history, homeWindow(layout, w, false))
	}
	ctx, err := TrainWindows(layout, time.Minute, history)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.TimingCapable() || ctx.SchemaVersion() != ContextSchemaV2 {
		t.Fatalf("trained context: capable=%v schema=%d, want capable v%d",
			ctx.TimingCapable(), ctx.SchemaVersion(), ContextSchemaV2)
	}
	var buf bytes.Buffer
	if err := ctx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadContext(&buf, layout)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.TimingCapable() {
		t.Error("timing capability lost across save/load")
	}

	checks := DefaultChecks()
	if len(checks) != 6 || checks[len(checks)-1].Cause() != CheckTiming {
		t.Fatalf("DefaultChecks = %d checks ending in %v, want 6 ending in timing",
			len(checks), checks[len(checks)-1].Cause())
	}
	if CheckTiming.Family() != FamilyTiming {
		t.Errorf("CheckTiming family = %q", CheckTiming.Family())
	}
	// A structural-only pipeline and the timing knobs all construct.
	if _, err := New(loaded, WithChecks(checks[:5]...)); err != nil {
		t.Fatalf("WithChecks: %v", err)
	}
	if _, err := New(loaded, WithTiming(false)); err != nil {
		t.Fatalf("WithTiming: %v", err)
	}
	if _, err := New(loaded, WithTimingBand(32, 2), WithTimingQuantiles(0.05, 0.95), WithTimingFlagFast(true)); err != nil {
		t.Fatalf("timing options: %v", err)
	}
}

func TestFacadeBuilderIntegration(t *testing.T) {
	_, layout := buildHome(t)
	b := NewBuilder(layout, DefaultDuration)
	if b.Duration() != time.Minute {
		t.Errorf("duration = %v", b.Duration())
	}
}

func TestFacadeDeviceWeights(t *testing.T) {
	_, layout := buildHome(t)
	history := make([]*Observation, 0, 12*60)
	for w := 0; w < 12*60; w++ {
		history = append(history, homeWindow(layout, w, false))
	}
	ctx, err := TrainWindows(layout, time.Minute, history)
	if err != nil {
		t.Fatal(err)
	}
	// Weighting the kitchen motion sensor as critical must not break
	// normal operation.
	det, err := New(ctx, WithConfig(Config{
		Weights:     map[DeviceID]float64{0: 10},
		WeightAlarm: 5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 60; w++ {
		res, err := det.Process(homeWindow(layout, w, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Fatalf("false positive at %d with weights configured", w)
		}
	}
}

// ExampleTrainWindows shows the facade's core loop (compile-checked).
func ExampleTrainWindows() {
	reg := NewRegistry()
	reg.MustAdd("motion", Binary, Motion, "hall")
	layout := NewLayout(reg)
	var history []*Observation
	for w := 0; w < 120; w++ {
		o := layout.NewObservation(w)
		o.Binary[0] = w%2 == 0
		history = append(history, o)
	}
	ctx, _ := TrainWindows(layout, time.Minute, history)
	fmt.Println(ctx.NumGroups(), "groups")
	// Output: 2 groups
}
